(* End-to-end tests of the installed binaries: generate an instance with the
   CLI, inspect it, solve it, and check the outputs stay consistent with the
   library run directly on the same file. *)

let check = Alcotest.(check bool)

(* Resolve the CLI binary both under `dune runtest` (cwd = test dir in
   _build) and when the test executable is launched from the repo root. *)
let cli =
  let exe_dir = Filename.dirname Sys.executable_name in
  let candidates =
    [
      Filename.concat exe_dir "../bin/semimatch_cli.exe";
      "../bin/semimatch_cli.exe";
      "_build/default/bin/semimatch_cli.exe";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> List.hd candidates

let run_capture args =
  let command = Filename.quote_command cli args in
  let ic = Unix.open_process_in command in
  let output = In_channel.input_all ic in
  let status = Unix.close_process_in ic in
  (status, output)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let with_temp f =
  let path = Filename.temp_file "semimatch_cli" ".hg" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

let expect_ok (status, output) =
  (match status with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED c -> Alcotest.failf "CLI exited %d: %s" c output
  | _ -> Alcotest.failf "CLI killed: %s" output);
  output

let test_gen_info_solve_roundtrip () =
  with_temp (fun path ->
      let out =
        expect_ok
          (run_capture
             [ "gen"; "--tasks"; "120"; "--procs"; "24"; "--groups"; "4"; "--dv"; "3"; "--dh"; "4";
               "--weights"; "related"; "--seed"; "9"; "-o"; path ])
      in
      check "gen reports size" true (contains ~needle:"120 tasks" out);
      let info = expect_ok (run_capture [ "info"; "--verbose"; path ]) in
      check "info shows LB" true (contains ~needle:"lower bound (Eq. 1)" info);
      check "verbose histograms" true (contains ~needle:"configurations per task" info);
      (* Solve through the CLI and through the library; makespans must
         agree because both read the same file deterministically. *)
      let solve_out = expect_ok (run_capture [ "solve"; "-a"; "sgh"; path ]) in
      let h = Hyper.Io.load path in
      let expected =
        Semimatch.Greedy_hyper.makespan Semimatch.Greedy_hyper.Sorted_greedy_hyp h
      in
      check "CLI solve matches library" true
        (contains ~needle:(Printf.sprintf "makespan:  %g" expected) solve_out))

let test_compare_lists_all () =
  with_temp (fun path ->
      ignore
        (expect_ok
           (run_capture
              [ "gen"; "--tasks"; "60"; "--procs"; "12"; "--groups"; "3"; "--seed"; "4"; "-o"; path ]));
      let out = expect_ok (run_capture [ "compare"; path ]) in
      List.iter
        (fun algo ->
          check (Semimatch.Greedy_hyper.name algo ^ " listed") true
            (contains ~needle:(Semimatch.Greedy_hyper.name algo) out))
        Semimatch.Greedy_hyper.all)

let test_exact_on_singleproc () =
  with_temp (fun path ->
      ignore
        (expect_ok
           (run_capture
              [ "gen-sp"; "--tasks"; "60"; "--procs"; "12"; "--groups"; "3"; "--degree"; "3";
                "--seed"; "2"; "-o"; path ]));
      let out = expect_ok (run_capture [ "exact"; path ]) in
      check "prints optimum" true (contains ~needle:"optimal makespan:" out);
      let bisect = expect_ok (run_capture [ "exact"; "--strategy"; "bisection"; path ]) in
      (* Both strategies print the same optimum (prefix before '('). *)
      let prefix s = List.hd (String.split_on_char '(' s) in
      Alcotest.(check string) "strategies agree" (prefix out) (prefix bisect))

let test_exact_rejects_multiproc () =
  with_temp (fun path ->
      ignore
        (expect_ok
           (run_capture [ "gen"; "--tasks"; "40"; "--procs"; "8"; "--groups"; "2"; "-o"; path ]));
      let command = Filename.quote_command cli [ "exact"; path ] ~stderr:"/dev/null" in
      let status = Sys.command command in
      Alcotest.(check int) "exit 1" 1 status)

let test_simulate () =
  with_temp (fun path ->
      ignore
        (expect_ok
           (run_capture
              [ "gen"; "--tasks"; "30"; "--procs"; "6"; "--groups"; "2"; "--seed"; "3"; "-o"; path ]));
      let out = expect_ok (run_capture [ "simulate"; "--policy"; "spt"; "--width"; "40"; path ]) in
      check "mentions makespan" true (contains ~needle:"makespan" out);
      check "draws rows" true (contains ~needle:"P0" out))

(* --- error paths: every operator mistake is one short diagnostic on
   stderr and exit 2, never an OCaml backtrace. --- *)

let run_capture_err args =
  let command = Filename.quote_command cli args ^ " 2>&1" in
  let ic = Unix.open_process_in command in
  let output = In_channel.input_all ic in
  let status = Unix.close_process_in ic in
  (status, output)

let expect_clean_failure name (status, output) =
  (match status with
  | Unix.WEXITED 2 -> ()
  | Unix.WEXITED c -> Alcotest.failf "%s: expected exit 2, got %d: %s" name c output
  | _ -> Alcotest.failf "%s: CLI killed: %s" name output);
  check (name ^ ": no backtrace") false (contains ~needle:"Raised at" output);
  check (name ^ ": no raw exception") false (contains ~needle:"Fatal error" output);
  output

let count_lines s =
  String.fold_left (fun acc c -> if c = '\n' then acc + 1 else acc) 0 s

let test_missing_instance_file () =
  let out =
    expect_clean_failure "missing file" (run_capture_err [ "solve"; "/nonexistent/instance.hg" ])
  in
  check "names the program" true (contains ~needle:"semimatch_cli:" out);
  Alcotest.(check int) "one-line diagnostic" 1 (count_lines out)

let test_corrupt_instance_file () =
  with_temp (fun path ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc "hypergraph 2 2\nh 0 not-a-weight 0\n");
      let out = expect_clean_failure "corrupt file" (run_capture_err [ "solve"; path ]) in
      check "line-numbered parse error" true (contains ~needle:"line 2" out);
      Alcotest.(check int) "one-line diagnostic" 1 (count_lines out))

let test_unknown_flag () =
  ignore (expect_clean_failure "unknown flag" (run_capture_err [ "solve"; "--frobnicate"; "x" ]));
  ignore (expect_clean_failure "unknown command" (run_capture_err [ "frobnicate" ]))

let test_unwritable_trace () =
  with_temp (fun path ->
      ignore
        (expect_ok
           (run_capture [ "gen"; "--tasks"; "20"; "--procs"; "4"; "--groups"; "2"; "-o"; path ]));
      let out =
        expect_clean_failure "unwritable trace"
          (run_capture_err [ "solve"; "--trace"; "/nonexistent-dir/t.json"; path ])
      in
      check "names the path" true (contains ~needle:"/nonexistent-dir/t.json" out))

let test_bad_fault_spec () =
  with_temp (fun path ->
      ignore
        (expect_ok
           (run_capture [ "gen"; "--tasks"; "20"; "--procs"; "4"; "--groups"; "2"; "-o"; path ]));
      let out =
        expect_clean_failure "bad fault spec"
          (run_capture_err [ "solve"; "--faults"; "flood:3"; path ])
      in
      check "explains the grammar" true (contains ~needle:"crash:P" out);
      let out =
        expect_clean_failure "fault proc out of range"
          (run_capture_err [ "simulate"; "--faults"; "crash:99"; path ])
      in
      check "range check names p" true (contains ~needle:"out of range" out);
      ignore
        (expect_clean_failure "--repair without --faults"
           (run_capture_err [ "solve"; "--repair"; path ]));
      ignore
        (expect_clean_failure "bad policy"
           (run_capture_err [ "simulate"; "--policy"; "zzz"; path ])))

let test_faulted_solve_and_simulate () =
  (* The happy path of the new flags: repair after crashes, a deadline
     budget, and a degraded simulation all work end to end. *)
  with_temp (fun path ->
      ignore
        (expect_ok
           (run_capture
              [ "gen"; "--tasks"; "40"; "--procs"; "8"; "--groups"; "2"; "--seed"; "5"; "-o"; path ]));
      let out =
        expect_ok (run_capture [ "solve"; "--faults"; "crash:0,slow:1x2"; "--repair"; path ])
      in
      check "prints the plan" true (contains ~needle:"crash:0" out);
      check "prints repair stats" true (contains ~needle:"moved" out);
      check "prints repaired makespan" true (contains ~needle:"repaired makespan" out);
      let out = expect_ok (run_capture [ "solve"; "--deadline"; "5000"; path ]) in
      check "names the winning tier" true (contains ~needle:"tier" out);
      let out =
        expect_ok
          (run_capture [ "simulate"; "--faults"; "crash:0"; "--repair"; "--width"; "40"; path ])
      in
      check "degraded makespan reported" true (contains ~needle:"makespan" out))

let test_version () =
  let out = expect_ok (run_capture [ "version" ]) in
  Alcotest.(check int) "one line" 1 (count_lines out);
  check "names the package" true (contains ~needle:"semimatch " out);
  check "reports domains" true (contains ~needle:"domains=" out);
  check "reports obs" true (contains ~needle:"obs=" out)

let test_client_without_server () =
  (* No daemon on the socket: one clean diagnostic, exit 2. *)
  let out =
    expect_clean_failure "client, no server"
      (run_capture_err
         [ "client"; "--socket"; "/tmp/semimatch-test-no-such.sock"; "--request"; {|{"op":"ping"}|} ])
  in
  check "names the socket" true (contains ~needle:"no-such.sock" out);
  ignore
    (expect_clean_failure "client without transport" (run_capture_err [ "client"; "--request"; "{}" ]));
  ignore
    (expect_clean_failure "serve without listener" (run_capture_err [ "serve" ]))

let test_loadgen_and_metrics_e2e () =
  (* The full service loop against a real daemon: loadgen reports per-op
     quantiles, the metrics scrape lints clean, and shutdown is orderly. *)
  let sock = Filename.temp_file "semimatch_e2e" ".sock" in
  Sys.remove sock;
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process cli
      [| cli; "serve"; "--socket"; sock |]
      devnull devnull devnull
  in
  Unix.close devnull;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      if Sys.file_exists sock then Sys.remove sock)
    (fun () ->
      let deadline = Unix.gettimeofday () +. 5.0 in
      while not (Sys.file_exists sock) && Unix.gettimeofday () < deadline do
        Unix.sleepf 0.02
      done;
      check "daemon came up" true (Sys.file_exists sock);
      let out =
        expect_ok
          (run_capture
             [ "loadgen"; "--socket"; sock; "--duration"; "0.4"; "--rate"; "80"; "--seed"; "1" ])
      in
      check "loadgen headline" true (contains ~needle:"replies/s" out);
      check "per-op quantile columns" true (contains ~needle:"p95_ms" out);
      check "add_task row present" true (contains ~needle:"add_task" out);
      let prom = expect_ok (run_capture [ "client"; "--socket"; sock; "--metrics" ]) in
      check "exposition has TYPE lines" true (contains ~needle:"# TYPE" prom);
      check "server gauges exported" true (contains ~needle:"semimatch_server_sessions" prom);
      (match Obs.Prom.lint prom with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "scraped exposition fails lint: %s" msg);
      ignore
        (expect_ok (run_capture [ "client"; "--socket"; sock; "--request"; {|{"op":"shutdown"}|} ]));
      ignore (Unix.waitpid [] pid))

(* --- doctor: offline bundle validation.  The happy path validates and
   replays a bundle written in-process; every corruption is one clean
   diagnostic and exit 2. --- *)

let test_doctor_validates_and_replays () =
  Obs.with_recording (fun () ->
      let dir = Filename.temp_file "semimatch_doctor" "" in
      Sys.remove dir;
      Unix.mkdir dir 0o755;
      let rec rm path =
        if Sys.is_directory path then begin
          Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
          Unix.rmdir path
        end
        else Sys.remove path
      in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists dir then rm dir)
        (fun () ->
          Obs.Events.emit "doctor.test" [ Obs.Events.int "x" 1 ];
          ignore (Obs.Span.timed "server.resolve" (fun () -> Sys.opaque_identity ()));
          let h =
            Hyper.Graph.create ~n1:2 ~n2:2
              ~hyperedges:[ (0, [| 0 |], 1.0); (0, [| 1 |], 2.0); (1, [| 1 |], 1.0) ]
          in
          let bundle =
            match
              Obs.Recorder.write_bundle ~dir ~trigger:"stall" ~rule:"stall:80"
                ~extra:
                  [ ("instance.hg", Hyper.Io.to_string h); ("request.json", {|{"op":"resolve"}|}) ]
                ~version:"test" ()
            with
            | Ok b -> b
            | Error msg -> Alcotest.failf "write_bundle failed: %s" msg
          in
          let out = expect_ok (run_capture [ "doctor"; bundle ]) in
          check "verdict" true (contains ~needle:"bundle OK" out);
          check "trigger summarized" true (contains ~needle:"stall (rule stall:80)" out);
          check "slowest spans listed" true (contains ~needle:"slowest spans" out);
          check "captured instance replayed" true
            (contains ~needle:"portfolio best makespan" out);
          (* A size mismatch between disk and manifest is corruption. *)
          let events = Filename.concat bundle "events.jsonl" in
          let saved = In_channel.with_open_bin events In_channel.input_all in
          Out_channel.with_open_bin events (fun oc -> Out_channel.output_string oc "");
          ignore (expect_clean_failure "truncated file" (run_capture_err [ "doctor"; bundle ]));
          Out_channel.with_open_bin events (fun oc -> Out_channel.output_string oc saved);
          (* An unparseable manifest is corruption... *)
          let manifest = Filename.concat bundle "manifest.json" in
          Out_channel.with_open_bin manifest (fun oc -> Out_channel.output_string oc "{not json");
          ignore (expect_clean_failure "corrupt manifest" (run_capture_err [ "doctor"; bundle ]));
          (* ...and a missing one marks a bundle that never completed. *)
          Sys.remove manifest;
          let out = expect_clean_failure "missing manifest" (run_capture_err [ "doctor"; bundle ]) in
          check "names the incompleteness" true (contains ~needle:"manifest" out);
          ignore
            (expect_clean_failure "nonexistent bundle"
               (run_capture_err [ "doctor"; "/nonexistent-semimatch-bundle" ]))))

let suite =
  [
    Alcotest.test_case "gen/info/solve roundtrip" `Quick test_gen_info_solve_roundtrip;
    Alcotest.test_case "version" `Quick test_version;
    Alcotest.test_case "client/serve operator errors" `Quick test_client_without_server;
    Alcotest.test_case "loadgen + metrics against a live daemon" `Quick
      test_loadgen_and_metrics_e2e;
    Alcotest.test_case "missing instance file" `Quick test_missing_instance_file;
    Alcotest.test_case "corrupt instance file" `Quick test_corrupt_instance_file;
    Alcotest.test_case "unknown flag and command" `Quick test_unknown_flag;
    Alcotest.test_case "unwritable trace path" `Quick test_unwritable_trace;
    Alcotest.test_case "bad fault specs" `Quick test_bad_fault_spec;
    Alcotest.test_case "faulted solve and simulate" `Quick test_faulted_solve_and_simulate;
    Alcotest.test_case "compare lists all heuristics" `Quick test_compare_lists_all;
    Alcotest.test_case "exact on SINGLEPROC file" `Quick test_exact_on_singleproc;
    Alcotest.test_case "exact rejects MULTIPROC" `Quick test_exact_rejects_multiproc;
    Alcotest.test_case "simulate" `Quick test_simulate;
    Alcotest.test_case "doctor validates and replays bundles" `Quick
      test_doctor_validates_and_replays;
  ]
