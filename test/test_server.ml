(* Scheduler service tests, all over the in-process loopback transport: the
   full protocol path (parse → admission → batch → session → reply) without
   sockets, so every check is deterministic at jobs = 1. *)

module J = Obs.Json
module P = Server.Protocol
module L = Server.Loopback
module H = Hyper.Graph

let check = Alcotest.(check bool)
let line fields = J.to_string (J.Obj fields)

let field reply name =
  match J.member name (J.of_string reply) with
  | Some v -> v
  | None -> Alcotest.failf "reply lacks %S: %s" name reply

let num reply name =
  match field reply name with
  | J.Num f -> f
  | _ -> Alcotest.failf "field %S not numeric: %s" name reply

let is_ok reply = match field reply "ok" with J.Bool b -> b | _ -> false

let error_code reply =
  match J.member "error" (J.of_string reply) with Some (J.Str s) -> s | _ -> ""

let expect_ok reply =
  if not (is_ok reply) then Alcotest.failf "expected ok reply, got %s" reply;
  reply

let expect_error code reply =
  if is_ok reply then Alcotest.failf "expected %s error, got %s" code reply;
  Alcotest.(check string) ("error code " ^ code) code (error_code reply);
  reply

(* A tiny fixed instance with some slack for the heuristics to disagree on. *)
let tiny () =
  H.create ~n1:3 ~n2:3
    ~hyperedges:
      [
        (0, [| 0 |], 2.0);
        (0, [| 1 |], 2.0);
        (1, [| 1 |], 1.0);
        (1, [| 2 |], 1.0);
        (2, [| 0; 1 |], 1.0);
        (2, [| 2 |], 3.0);
      ]

let load_line ?id ~session h =
  let base =
    [ ("op", J.Str "load"); ("session", J.Str session); ("instance", J.Str (Hyper.Io.to_string h)) ]
  in
  line (match id with None -> base | Some i -> ("id", J.Num (float_of_int i)) :: base)

(* --- golden transcript -------------------------------------------------- *)

(* Byte-for-byte, modulo the timing fields: elapsed_ms and uptime_s are wall
   clock and the stats counters include timing-sensitive solver work, so all
   three are blanked before comparison.  Everything else — field order,
   number formatting, id echoing — is part of the protocol contract scripted
   clients rely on. *)
let normalize reply =
  let rec strip = function
    | J.Obj fields ->
        J.Obj
          (List.map
             (fun (k, v) ->
               match k with
               | "elapsed_ms" | "uptime_s" -> (k, J.Num 0.0)
               | "counters" -> (k, J.Obj [])
               | _ -> (k, strip v))
             fields)
    | v -> v
  in
  J.to_string (strip (J.of_string reply))

let golden_script () =
  [
    line [ ("op", J.Str "ping") ];
    load_line ~id:1 ~session:"g" (tiny ());
    line
      [
        ("id", J.Num 2.0); ("op", J.Str "add_task"); ("session", J.Str "g");
        ("configs", J.List [ J.Obj [ ("procs", J.List [ J.Num 2.0 ]); ("weight", J.Num 2.0) ] ]);
      ];
    line [ ("id", J.Num 3.0); ("op", J.Str "remove_task"); ("session", J.Str "g"); ("task", J.Num 1.0) ];
    line [ ("id", J.Num 4.0); ("op", J.Str "resolve"); ("session", J.Str "g"); ("budget_ms", J.Num 1e7) ];
    line [ ("id", J.Num 5.0); ("op", J.Str "stats") ];
    line [ ("op", J.Str "sessions") ];
    line [ ("id", J.Str "bye"); ("op", J.Str "shutdown") ];
  ]

let golden_expected =
  [
    {|{"ok":true,"op":"ping","pong":true}|};
    {|{"id":1,"ok":true,"op":"load","session":"g","tasks":3,"procs":3,"makespan":3,"lower_bound":2,"moved":3,"infeasible":0}|};
    {|{"id":2,"ok":true,"op":"add_task","tid":3,"batched":1,"makespan":3,"moved":1,"infeasible":0}|};
    {|{"id":3,"ok":true,"op":"remove_task","task":1,"makespan":3}|};
    {|{"id":4,"ok":true,"op":"resolve","tier":"exact","degraded":false,"replaced":false,"makespan":3,"lower_bound":2,"elapsed_ms":0}|};
    {|{"id":5,"ok":true,"op":"stats","uptime_s":0,"version":"dev","requests":6,"served":5,"sessions":1,"pending":0,"counters":{}}|};
    {|{"ok":true,"op":"sessions","sessions":["g"]}|};
    {|{"id":"bye","ok":true,"op":"shutdown","shutting_down":true}|};
  ]

let test_golden_transcript () =
  Obs.with_recording (fun () ->
      let lb = L.create () in
      let replies = List.map (fun l -> normalize (L.request lb l)) (golden_script ()) in
      List.iteri
        (fun i (expected, got) ->
          Alcotest.(check string) (Printf.sprintf "reply %d" i) expected got)
        (List.combine golden_expected replies);
      check "shutdown latched" true (L.shutting_down lb))

(* --- online sequence vs from-scratch portfolio -------------------------- *)

(* Snapshot state → (graph, chosen config per task, dead procs). *)
let decode_state state =
  let str name = match J.member name state with Some (J.Str s) -> s | _ -> Alcotest.fail name in
  let ints name =
    match J.member name state with
    | Some (J.List l) -> List.map (function J.Num f -> int_of_float f | _ -> Alcotest.fail name) l
    | _ -> Alcotest.fail name
  in
  (Hyper.Io.of_string (str "instance"), Array.of_list (ints "chosen"), ints "dead")

(* Recompute the served makespan from first principles: per-processor loads
   of the chosen configurations on the snapshot's own instance text. *)
let served_makespan h chosen dead =
  let loads = Array.make h.H.n2 0.0 in
  Array.iteri
    (fun v c ->
      check "every task placed" true (c >= 0 && c < H.task_degree h v);
      let e = h.H.task_off.(v) + c in
      H.iter_h_procs h e (fun p ->
          check "no pin on a dead processor" false (List.mem p dead);
          loads.(p) <- loads.(p) +. H.h_weight h e))
    chosen;
  Array.fold_left Float.max 0.0 loads

let random_config st ~n2 =
  let k = 1 + Random.State.int st (min 2 (n2 - 1)) in
  let start = Random.State.int st n2 in
  J.Obj
    [
      ("procs", J.List (List.init k (fun i -> J.Num (float_of_int ((start + i) mod n2)))));
      (* One-decimal weights survive the snapshot's %g text format exactly. *)
      ("weight", J.Num (float_of_int (5 + Random.State.int st 20) /. 10.0));
    ]

let test_random_sequence_vs_portfolio () =
  Obs.with_recording (fun () ->
      let st = Random.State.make [| 42 |] in
      let n2 = 5 in
      let base =
        H.create ~n1:8 ~n2
          ~hyperedges:
            (List.concat
               (List.init 8 (fun v ->
                    List.init 2 (fun _ ->
                        match random_config st ~n2 with
                        | J.Obj [ ("procs", J.List ps); ("weight", J.Num w) ] ->
                            ( v,
                              Array.of_list (List.map (function J.Num f -> int_of_float f | _ -> 0) ps),
                              w )
                        | _ -> assert false))))
      in
      let lb = L.create () in
      ignore (expect_ok (L.request lb (load_line ~session:"r" base)));
      let live = ref (List.init 8 Fun.id) in
      for _ = 1 to 40 do
        if Random.State.bool st || List.length !live <= 2 then begin
          let reply =
            expect_ok
              (L.request lb
                 (line
                    [
                      ("op", J.Str "add_task"); ("session", J.Str "r");
                      ("configs", J.List [ random_config st ~n2; random_config st ~n2 ]);
                    ]))
          in
          live := int_of_float (num reply "tid") :: !live
        end
        else begin
          let victim = List.nth !live (Random.State.int st (List.length !live)) in
          ignore
            (expect_ok
               (L.request lb
                  (line
                     [
                       ("op", J.Str "remove_task"); ("session", J.Str "r");
                       ("task", J.Num (float_of_int victim));
                     ])));
          live := List.filter (( <> ) victim) !live
        end
      done;
      let resolve =
        expect_ok
          (L.request lb
             (line [ ("op", J.Str "resolve"); ("session", J.Str "r"); ("budget_ms", J.Num 1e7) ]))
      in
      let snap = expect_ok (L.request lb (line [ ("op", J.Str "snapshot"); ("session", J.Str "r") ])) in
      let h, chosen, dead = decode_state (field snap "state") in
      (* Feasibility: every surviving task is placed on live processors, and
         the reported makespan is exactly the loads those choices imply. *)
      let served = served_makespan h chosen dead in
      Alcotest.(check (float 1e-9)) "reported makespan is the real one" served (num resolve "makespan");
      (* Quality: after one generous resolve, the served schedule is no worse
         than the from-scratch portfolio on the final instance. *)
      let fresh = (Semimatch.Portfolio.solve ~jobs:1 h).Semimatch.Portfolio.best_makespan in
      check "served <= from-scratch portfolio" true (served <= fresh +. 1e-9))

(* --- snapshot / restore round trip -------------------------------------- *)

let preamble lb session =
  ignore (expect_ok (L.request lb (load_line ~session (tiny ()))));
  ignore
    (expect_ok
       (L.request lb
          (line
             [
               ("op", J.Str "add_task"); ("session", J.Str session);
               ("configs", J.List [ J.Obj [ ("procs", J.List [ J.Num 0.0; J.Num 2.0 ]); ("weight", J.Num 1.5) ] ]);
             ])));
  ignore
    (expect_ok
       (L.request lb
          (line [ ("op", J.Str "remove_task"); ("session", J.Str session); ("task", J.Num 0.0) ])))

let solve_line session = line [ ("op", J.Str "solve"); ("session", J.Str session) ]
let snapshot_line session = line [ ("op", J.Str "snapshot"); ("session", J.Str session) ]

let test_snapshot_restore_identity () =
  Obs.with_recording (fun () ->
      (* Path A: snapshot, restore over the live session, then solve. *)
      let a = L.create () in
      preamble a "s";
      let state = field (expect_ok (L.request a (snapshot_line "s"))) "state" in
      ignore
        (expect_ok
           (L.request a
              (line [ ("op", J.Str "restore"); ("session", J.Str "s"); ("state", state) ])));
      let solve_a = expect_ok (L.request a (solve_line "s")) in
      let snap_a = field (expect_ok (L.request a (snapshot_line "s"))) "state" in
      (* Path B: the same history without ever snapshotting. *)
      let b = L.create () in
      preamble b "s";
      let solve_b = expect_ok (L.request b (solve_line "s")) in
      let snap_b = field (expect_ok (L.request b (snapshot_line "s"))) "state" in
      Alcotest.(check string) "final state byte-identical" (J.to_string snap_b) (J.to_string snap_a);
      Alcotest.(check string) "solve replies identical modulo timing" (normalize solve_b)
        (normalize solve_a))

(* --- parser fuzz: total over hostile bytes ------------------------------ *)

let hostile_string =
  QCheck.make ~print:String.escaped
    QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 300))

let fuzz_parse_total =
  QCheck.Test.make ~count:1000 ~name:"Protocol.parse never raises" hostile_string (fun s ->
      match P.parse s with Ok _ | Error _ -> true)

let fuzz_parse_truncations =
  (* Every prefix of a valid request parses to *something* without raising,
     and the loopback still answers each with exactly one reply. *)
  QCheck.Test.make ~count:50 ~name:"truncated requests still get replies"
    QCheck.(int_range 0 200)
    (fun seed ->
      let full =
        line
          [
            ("id", J.Num (float_of_int seed)); ("op", J.Str "add_task"); ("session", J.Str "nope");
            ("configs", J.List [ J.Obj [ ("procs", J.List [ J.Num 0.0 ]); ("weight", J.Num 1.0) ] ]);
          ]
      in
      Obs.with_recording (fun () ->
          let lb = L.create () in
          List.for_all
            (fun len ->
              let prefix = String.sub full 0 len in
              (match P.parse prefix with Ok _ | Error _ -> ());
              String.length (L.request lb prefix) > 0)
            (List.init (String.length full) Fun.id)))

let test_frame_cap () =
  Obs.with_recording (fun () ->
      let big = String.make 300 'x' in
      (match P.parse ~max_frame:64 big with
      | Error (P.Too_large, _, _) -> ()
      | _ -> Alcotest.fail "oversized frame must be rejected as too_large");
      (* The cap is checked before any parsing: even well-formed JSON over
         the limit is refused, so a hostile length never reaches the
         allocator. *)
      let lb = L.create ~max_frame:64 () in
      ignore (expect_error "too_large" (L.request lb (load_line ~session:"s" (tiny ()))));
      ignore (expect_ok (L.request lb (line [ ("op", J.Str "ping") ]))))

(* --- admission control, batching, ordering ------------------------------ *)

let test_busy_backpressure () =
  Obs.with_recording (fun () ->
      let lb = L.create ~max_pending:2 () in
      for i = 1 to 5 do
        L.post lb (line [ ("id", J.Num (float_of_int i)); ("op", J.Str "ping") ])
      done;
      let replies = L.drain lb in
      Alcotest.(check int) "every post answered" 5 (List.length replies);
      let busy, served = List.partition (fun r -> error_code r = "busy") replies in
      Alcotest.(check int) "overflow rejected" 3 (List.length busy);
      Alcotest.(check int) "admitted served" 2 (List.length served);
      (* The busy reply still carries the request id for matching. *)
      check "busy replies keep ids" true
        (List.for_all (fun r -> match field r "id" with J.Num _ -> true | _ -> false) busy);
      (* The queue drained, so the next round is admitted again. *)
      ignore (expect_ok (L.request lb (line [ ("op", J.Str "ping") ]))))

let test_batch_coalescing () =
  Obs.with_recording (fun () ->
      let lb = L.create () in
      ignore (expect_ok (L.request lb (load_line ~session:"b" (tiny ()))));
      for i = 0 to 2 do
        L.post lb
          (line
             [
               ("id", J.Num (float_of_int i)); ("op", J.Str "add_task"); ("session", J.Str "b");
               ("configs", J.List [ J.Obj [ ("procs", J.List [ J.Num (float_of_int i) ]); ("weight", J.Num 1.0) ] ]);
             ])
      done;
      let replies = List.map expect_ok (L.drain lb) in
      Alcotest.(check int) "one reply per request" 3 (List.length replies);
      List.iteri
        (fun i r ->
          Alcotest.(check int) "rode in a batch of 3" 3 (int_of_float (num r "batched"));
          Alcotest.(check int) "ids echoed in order" i (int_of_float (num r "id")))
        replies;
      let tids = List.map (fun r -> int_of_float (num r "tid")) replies in
      Alcotest.(check (list int)) "fresh tids in request order" [ 3; 4; 5 ] tids)

let test_reply_order_with_malformed () =
  Obs.with_recording (fun () ->
      let lb = L.create () in
      L.post lb (line [ ("id", J.Num 1.0); ("op", J.Str "ping") ]);
      L.post lb "{not json";
      L.post lb (line [ ("id", J.Num 3.0); ("op", J.Str "ping") ]);
      match L.drain lb with
      | [ r1; r2; r3 ] ->
          check "first served" true (is_ok r1);
          Alcotest.(check string) "malformed rejected in place" "protocol" (error_code r2);
          check "third served" true (is_ok r3)
      | rs -> Alcotest.failf "expected 3 replies, got %d" (List.length rs))

(* --- failures and error codes ------------------------------------------- *)

let test_kill_proc_and_infeasible () =
  Obs.with_recording (fun () ->
      (* Task 0 lives only on processor 0; task 1 can move to processor 1. *)
      let h =
        H.create ~n1:2 ~n2:2
          ~hyperedges:[ (0, [| 0 |], 1.0); (1, [| 0 |], 2.0); (1, [| 1 |], 2.0) ]
      in
      let lb = L.create () in
      ignore (expect_ok (L.request lb (load_line ~session:"k" h)));
      let kill = line [ ("op", J.Str "kill_proc"); ("session", J.Str "k"); ("proc", J.Num 0.0) ] in
      let r = expect_ok (L.request lb kill) in
      Alcotest.(check int) "task 0 stranded" 1 (int_of_float (num r "infeasible"));
      let r2 = expect_ok (L.request lb kill) in
      (* Idempotent in effect: the stranded task is retried (affected) but
         stays stranded and nothing placed moves. *)
      Alcotest.(check int) "still exactly one stranded task" 1
        (int_of_float (num r2 "infeasible"));
      Alcotest.(check (float 1e-9)) "makespan unchanged" (num r "makespan") (num r2 "makespan");
      (* resolve and solve keep reporting the stranded task, never crash. *)
      let s =
        expect_ok (L.request lb (line [ ("op", J.Str "solve"); ("session", J.Str "k") ]))
      in
      Alcotest.(check int) "solve reports the stranded task" 1 (int_of_float (num s "infeasible"));
      Alcotest.(check (float 1e-9)) "survivor load" 2.0 (num s "makespan"))

let test_snapshot_restore_after_kill_proc () =
  Obs.with_recording (fun () ->
      (* kill_proc can leave a task with no surviving configuration, i.e. a
         [chosen = -1] slot in the snapshot's chosen vector.  That state
         must survive a snapshot/restore round trip byte-identically, and
         the restored session must still verify and serve mutations. *)
      let h =
        H.create ~n1:2 ~n2:2
          ~hyperedges:[ (0, [| 0 |], 1.0); (1, [| 0 |], 2.0); (1, [| 1 |], 2.0) ]
      in
      let a = L.create () in
      ignore (expect_ok (L.request a (load_line ~session:"k" h)));
      let kill = line [ ("op", J.Str "kill_proc"); ("session", J.Str "k"); ("proc", J.Num 0.0) ] in
      ignore (expect_ok (L.request a kill));
      let state = field (expect_ok (L.request a (snapshot_line "k"))) "state" in
      (* Restore into a *fresh* engine, as crash recovery does. *)
      let b = L.create () in
      ignore
        (expect_ok
           (L.request b
              (line [ ("op", J.Str "restore"); ("session", J.Str "k"); ("state", state) ])));
      let state2 = field (expect_ok (L.request b (snapshot_line "k"))) "state" in
      Alcotest.(check string) "infeasible slot survives the round trip"
        (J.to_string state) (J.to_string state2);
      (match Server.Engine.resident (L.engine b) with
      | [ (_, s) ] ->
          (match Server.Session.verify s with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "restored session fails verify: %s" msg);
          Alcotest.(check (list int)) "task 0 still unplaced" [ 0 ]
            (Server.Session.unplaced s)
      | _ -> Alcotest.fail "one session expected");
      (* The restored session keeps serving: a task placeable on the
         survivor lands there, the stranded one stays stranded. *)
      let add =
        line
          [
            ("op", J.Str "add_task"); ("session", J.Str "k");
            ("configs", J.List [ J.Obj [ ("procs", J.List [ J.Num 1.0 ]); ("weight", J.Num 0.5) ] ]);
          ]
      in
      ignore (expect_ok (L.request b add));
      match Server.Engine.resident (L.engine b) with
      | [ (_, s) ] ->
          Alcotest.(check int) "task added after restore" 3 (Server.Session.n_tasks s);
          Alcotest.(check (list int)) "stranded task unchanged" [ 0 ] (Server.Session.unplaced s)
      | _ -> Alcotest.fail "one session expected")

let test_error_codes () =
  Obs.with_recording (fun () ->
      let lb = L.create () in
      ignore (expect_error "protocol" (L.request lb "[1,2]"));
      ignore (expect_error "protocol" (L.request lb (line [ ("op", J.Str "frobnicate") ])));
      ignore (expect_error "protocol" (L.request lb (line [ ("ops", J.Str "ping") ])));
      ignore
        (expect_error "unknown_session"
           (L.request lb (line [ ("op", J.Str "solve"); ("session", J.Str "ghost") ])));
      ignore
        (expect_error "bad_request"
           (L.request lb
              (line
                 [
                   ("op", J.Str "load"); ("session", J.Str "x");
                   ("path", J.Str "/nonexistent/instance.hg");
                 ])));
      ignore
        (expect_error "bad_request"
           (L.request lb
              (line
                 [ ("op", J.Str "restore"); ("session", J.Str "x"); ("state", J.Str "garbage") ])));
      ignore (expect_ok (L.request lb (load_line ~session:"x" (tiny ()))));
      (* Validation failures mutate nothing: the failed add leaves the task
         count unchanged. *)
      ignore
        (expect_error "bad_request"
           (L.request lb
              (line
                 [
                   ("op", J.Str "add_task"); ("session", J.Str "x");
                   ("configs", J.List [ J.Obj [ ("procs", J.List []); ("weight", J.Num 1.0) ] ]);
                 ])));
      ignore
        (expect_error "bad_request"
           (L.request lb
              (line [ ("op", J.Str "remove_task"); ("session", J.Str "x"); ("task", J.Num 99.0) ])));
      let r = expect_ok (L.request lb (line [ ("op", J.Str "ping") ])) in
      check "server survives the gauntlet" true (is_ok r))

(* --- introspection: stats basics, metrics exposition --------------------- *)

let test_stats_basics_without_obs () =
  (* The two-tier contract from protocol.mli: uptime/version/request totals
     are engine state and answer even with the Obs switch off; only the
     counters object goes dark. *)
  check "obs off for this test" false (Obs.is_enabled ());
  let lb = L.create () in
  ignore (expect_ok (L.request lb (line [ ("op", J.Str "ping") ])));
  let r = expect_ok (L.request lb (line [ ("op", J.Str "stats") ])) in
  check "uptime_s present and sane" true (num r "uptime_s" >= 0.0);
  (match field r "version" with
  | J.Str "dev" -> ()
  | v -> Alcotest.failf "version: %s" (J.to_string v));
  Alcotest.(check int) "requests counts both" 2 (int_of_float (num r "requests"));
  Alcotest.(check int) "served counts the ping" 1 (int_of_float (num r "served"));
  match field r "counters" with
  | J.Obj [] -> ()
  | v -> Alcotest.failf "counters should be empty with Obs off: %s" (J.to_string v)

let test_metrics_exposition () =
  Obs.with_recording (fun () ->
      let lb = L.create () in
      ignore (expect_ok (L.request lb (load_line ~session:"m" (tiny ()))));
      ignore (expect_ok (L.request lb (line [ ("op", J.Str "ping") ])));
      let r = expect_ok (L.request lb (line [ ("op", J.Str "metrics") ])) in
      let text =
        match field r "exposition" with
        | J.Str s -> s
        | _ -> Alcotest.fail "exposition must be a string"
      in
      (match Obs.Prom.lint text with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "exposition fails its own lint: %s" msg);
      let has needle =
        let nl = String.length needle and tl = String.length text in
        let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
        go 0
      in
      check "session gauge" true (has {|semimatch_server_sessions 1|});
      check "labeled per-session gauge" true (has {|{session="m"}|});
      check "per-op latency histogram" true (has "semimatch_server_latency_ping_us_bucket");
      check "cumulative +Inf bucket" true (has {|le="+Inf"|}))

(* --- client timeout and mid-request hangup ------------------------------- *)

let test_client_timeout () =
  (* A connected peer that never replies: the read must give up after the
     deadline, not hang the caller. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let c = Server.Client.of_fd a in
  let t0 = Unix.gettimeofday () in
  (match Server.Client.request ~timeout_s:0.3 c {|{"op":"ping"}|} with
  | reply -> Alcotest.failf "expected Timeout, got reply %s" reply
  | exception Server.Client.Timeout -> ());
  let elapsed = Unix.gettimeofday () -. t0 in
  check "timed out promptly" true (elapsed >= 0.25 && elapsed < 3.0);
  Server.Client.close c;
  Unix.close b

let test_client_server_death_mid_request () =
  (* The daemon dies after accepting the request but before replying: the
     client sees End_of_file, not a hang and not a Timeout. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let c = Server.Client.of_fd a in
  let killer =
    Domain.spawn (fun () ->
        (* Wait for the request bytes so the close is genuinely mid-request. *)
        let buf = Bytes.create 256 in
        ignore (Unix.read b buf 0 256);
        Unix.close b)
  in
  (match Server.Client.request ~timeout_s:5.0 c {|{"op":"ping"}|} with
  | reply -> Alcotest.failf "expected End_of_file, got reply %s" reply
  | exception End_of_file -> ());
  Domain.join killer;
  Server.Client.close c

let suite =
  [
    Alcotest.test_case "golden transcript" `Quick test_golden_transcript;
    Alcotest.test_case "random online sequence vs portfolio" `Quick
      test_random_sequence_vs_portfolio;
    Alcotest.test_case "snapshot/restore/solve identity" `Quick test_snapshot_restore_identity;
    QCheck_alcotest.to_alcotest fuzz_parse_total;
    QCheck_alcotest.to_alcotest fuzz_parse_truncations;
    Alcotest.test_case "frame size cap" `Quick test_frame_cap;
    Alcotest.test_case "busy backpressure" `Quick test_busy_backpressure;
    Alcotest.test_case "batch coalescing" `Quick test_batch_coalescing;
    Alcotest.test_case "reply order with malformed lines" `Quick test_reply_order_with_malformed;
    Alcotest.test_case "kill_proc and infeasible tasks" `Quick test_kill_proc_and_infeasible;
    Alcotest.test_case "snapshot/restore after kill_proc strands a task" `Quick
      test_snapshot_restore_after_kill_proc;
    Alcotest.test_case "error codes" `Quick test_error_codes;
    Alcotest.test_case "stats basics answer with Obs disabled" `Quick
      test_stats_basics_without_obs;
    Alcotest.test_case "metrics exposition over loopback" `Quick test_metrics_exposition;
    Alcotest.test_case "client read timeout" `Quick test_client_timeout;
    Alcotest.test_case "client sees EOF when the server dies mid-request" `Quick
      test_client_server_death_mid_request;
  ]
