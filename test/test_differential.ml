(* Differential tests: independent implementations of the same quantity must
   agree.  Random unit-weight SINGLEPROC instances (every task covered, so
   always feasible) pit the three matching engines against each other and
   the exact solver against brute force; the portfolio is checked against
   the sequential heuristics it is built from. *)

module Prng = Randkit.Prng
module Gh = Semimatch.Greedy_hyper

let gen_bipartite rng =
  let n1 = 1 + Prng.int rng 12 and n2 = 1 + Prng.int rng 6 in
  let edges = ref [] in
  for v = 0 to n1 - 1 do
    let d = 1 + Prng.int rng (min 3 n2) in
    let procs = Prng.sample_without_replacement rng ~k:d ~n:n2 in
    Array.iter (fun u -> edges := (v, u) :: !edges) procs
  done;
  Bipartite.Graph.unit_weights ~n1 ~n2 ~edges:!edges

let test_engines_agree_on_cardinality () =
  let rng = Prng.create ~seed:101 in
  for i = 1 to 250 do
    let g = gen_bipartite (Prng.split rng) in
    let sizes =
      List.map (fun engine -> (Matching.solve ~engine g).Matching.size) Matching.all_engines
    in
    match sizes with
    | reference :: rest ->
        List.iteri
          (fun j s ->
            if s <> reference then
              Alcotest.failf "instance %d: engine %d found %d matched, reference %d" i (j + 1) s
                reference)
          rest
    | [] -> assert false
  done

let test_engines_agree_on_exact_makespan () =
  let rng = Prng.create ~seed:102 in
  for i = 1 to 250 do
    let g = gen_bipartite (Prng.split rng) in
    let makespans =
      List.concat_map
        (fun engine ->
          List.map
            (fun strategy ->
              (Semimatch.Exact_unit.solve ~engine ~strategy g).Semimatch.Exact_unit.makespan)
            [ Semimatch.Exact_unit.Incremental; Semimatch.Exact_unit.Bisection ])
        Matching.all_engines
    in
    match makespans with
    | reference :: rest ->
        List.iter
          (fun m ->
            if m <> reference then
              Alcotest.failf "instance %d: optimal makespans disagree (%d vs %d)" i m reference)
          rest
    | [] -> assert false
  done

let test_brute_force_agrees_with_exact () =
  (* Tiny instances only: the brute force enumerates all Π d_v choices. *)
  let rng = Prng.create ~seed:103 in
  for i = 1 to 60 do
    let r = Prng.split rng in
    let n1 = 1 + Prng.int r 5 and n2 = 1 + Prng.int r 3 in
    let edges = ref [] in
    for v = 0 to n1 - 1 do
      let d = 1 + Prng.int r (min 2 n2) in
      let procs = Prng.sample_without_replacement r ~k:d ~n:n2 in
      Array.iter (fun u -> edges := (v, u) :: !edges) procs
    done;
    let g = Bipartite.Graph.unit_weights ~n1 ~n2 ~edges:!edges in
    let opt_bf, _ = Semimatch.Brute_force.singleproc g in
    let opt_exact = (Semimatch.Exact_unit.solve g).Semimatch.Exact_unit.makespan in
    if Float.abs (opt_bf -. float_of_int opt_exact) > 1e-9 then
      Alcotest.failf "instance %d: brute force %.17g vs exact %d" i opt_bf opt_exact
  done

let test_brute_force_agrees_multiproc () =
  (* MULTIPROC: the branch-and-bound optimum must never exceed (and the
     portfolio never beat) any heuristic. *)
  let rng = Prng.create ~seed:104 in
  for i = 1 to 40 do
    let r = Prng.split rng in
    let n1 = 1 + Prng.int r 5 and n2 = 1 + Prng.int r 3 in
    let hyperedges = ref [] in
    for v = 0 to n1 - 1 do
      let d = 1 + Prng.int r 2 in
      for _ = 1 to d do
        let k = 1 + Prng.int r (min 2 n2) in
        let procs = Prng.sample_without_replacement r ~k ~n:n2 in
        hyperedges := (v, procs, float_of_int (1 + Prng.int r 3)) :: !hyperedges
      done
    done;
    let h = Hyper.Graph.create ~n1 ~n2 ~hyperedges:!hyperedges in
    let opt, _ = Semimatch.Brute_force.multiproc h in
    let portfolio = Semimatch.Portfolio.solve h in
    if portfolio.Semimatch.Portfolio.best_makespan < opt -. 1e-9 then
      Alcotest.failf "instance %d: portfolio %.17g beat the optimum %.17g" i
        portfolio.Semimatch.Portfolio.best_makespan opt;
    List.iter
      (fun algo ->
        let m = Gh.makespan algo h in
        if m < opt -. 1e-9 then
          Alcotest.failf "instance %d: %s %.17g beat the optimum %.17g" i (Gh.name algo) m opt)
      Gh.all
  done

let test_portfolio_never_worse_than_sequential () =
  (* On the same instance the portfolio keeps the best of its member
     solvers, so it can never exceed the best sequential heuristic. *)
  let rng = Prng.create ~seed:105 in
  for i = 1 to 50 do
    let r = Prng.split rng in
    let n1 = 5 + Prng.int r 30 and n2 = 2 + Prng.int r 6 in
    let hyperedges = ref [] in
    for v = 0 to n1 - 1 do
      let d = 1 + Prng.int r 3 in
      for _ = 1 to d do
        let k = 1 + Prng.int r (min 3 n2) in
        let procs = Prng.sample_without_replacement r ~k ~n:n2 in
        hyperedges := (v, procs, float_of_int (1 + Prng.int r 4)) :: !hyperedges
      done
    done;
    let h = Hyper.Graph.create ~n1 ~n2 ~hyperedges:!hyperedges in
    let best_sequential =
      List.fold_left (fun acc algo -> Float.min acc (Gh.makespan algo h)) infinity Gh.all
    in
    let portfolio = Semimatch.Portfolio.solve h in
    if portfolio.Semimatch.Portfolio.best_makespan > best_sequential +. 1e-9 then
      Alcotest.failf "instance %d: portfolio %.17g worse than best sequential %.17g" i
        portfolio.Semimatch.Portfolio.best_makespan best_sequential
  done

let test_portfolio_exact_unit_race () =
  let rng = Prng.create ~seed:106 in
  for _ = 1 to 25 do
    let g = gen_bipartite (Prng.split rng) in
    let sequential = (Semimatch.Exact_unit.solve g).Semimatch.Exact_unit.makespan in
    List.iter
      (fun jobs ->
        let s, _engine = Semimatch.Portfolio.solve_exact_unit ~jobs g in
        Alcotest.(check int) "raced optimum" sequential s.Semimatch.Exact_unit.makespan)
      [ 1; 3 ]
  done

let suite =
  [
    Alcotest.test_case "matching engines agree on cardinality (250 instances)" `Quick
      test_engines_agree_on_cardinality;
    Alcotest.test_case "engines x strategies agree on exact makespan (250 instances)" `Quick
      test_engines_agree_on_exact_makespan;
    Alcotest.test_case "brute force = exact on tiny SINGLEPROC-UNIT" `Quick
      test_brute_force_agrees_with_exact;
    Alcotest.test_case "brute force lower-bounds heuristics and portfolio" `Quick
      test_brute_force_agrees_multiproc;
    Alcotest.test_case "portfolio never worse than best sequential" `Quick
      test_portfolio_never_worse_than_sequential;
    Alcotest.test_case "raced exact-unit equals sequential optimum" `Quick
      test_portfolio_exact_unit_race;
  ]
