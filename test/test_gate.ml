(* The benchmark-regression gate: the median/MAD tolerance bands must pass
   identical timings, catch a 3x slowdown, scale with the CPU calibration
   ratio, and survive the baseline/trajectory file round trip. *)

module Gate = Experiments.Bench_gate

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk_group ?(mad = 0.001) name median =
  { Gate.g_name = name; g_reps = 100; g_median_s = median; g_mad_s = mad; g_samples = 5 }

let mk_baseline ?(calib = 0.05) groups = { Gate.b_calib_s = calib; b_groups = groups }

let test_median_mad () =
  let med, mad = Gate.median_mad [| 3.0; 1.0; 2.0 |] in
  Alcotest.(check (float 1e-9)) "median" 2.0 med;
  Alcotest.(check (float 1e-9)) "mad" 1.0 mad;
  let med, mad = Gate.median_mad [| 5.0 |] in
  Alcotest.(check (float 1e-9)) "singleton median" 5.0 med;
  Alcotest.(check (float 1e-9)) "singleton mad" 0.0 mad;
  check "empty raises"
    (match Gate.median_mad [||] with exception Invalid_argument _ -> true | _ -> false)
    true

let test_identical_times_pass () =
  let b = mk_baseline [ mk_group "a" 0.020; mk_group "b" 0.030 ] in
  let verdicts =
    Gate.check_medians b ~calib_now:b.Gate.b_calib_s [ ("a", 0.020); ("b", 0.030) ]
  in
  check_int "one verdict per group" 2 (List.length verdicts);
  check "identical timings pass" (Gate.all_pass verdicts) true

let test_3x_slowdown_fails () =
  let b = mk_baseline [ mk_group "a" 0.020; mk_group "b" 0.030 ] in
  (* Directly 3x slower... *)
  let direct = Gate.check_medians b ~calib_now:b.Gate.b_calib_s [ ("a", 0.060); ("b", 0.030) ] in
  check "3x group regresses" (not (Gate.all_pass direct)) true;
  check "healthy group still passes"
    (not (List.find (fun v -> v.Gate.v_group = "b") direct).Gate.v_regressed)
    true;
  (* ...and via the injection hook the CI dry-run uses. *)
  let injected =
    Gate.check_medians ~slowdown:3.0 b ~calib_now:b.Gate.b_calib_s
      [ ("a", 0.020); ("b", 0.030) ]
  in
  check "injected 3x slowdown trips every group"
    (List.for_all (fun v -> v.Gate.v_regressed) injected)
    true

let test_calibration_scaling () =
  let b = mk_baseline ~calib:0.05 [ mk_group "a" 0.020 ] in
  (* A machine running the calibration loop 2x slower widens the band: the
     same 3x wall-time ratio is a regression at ratio 1 but not at 2. *)
  let fast = Gate.check_medians b ~calib_now:0.05 [ ("a", 0.060) ] in
  check "3x regresses on the same machine" (not (Gate.all_pass fast)) true;
  let slow_machine = Gate.check_medians b ~calib_now:0.10 [ ("a", 0.060) ] in
  check "3x passes when the machine is 2x slower" (Gate.all_pass slow_machine) true;
  (* The scale ratio is clamped: an absurd calibration cannot wash out a
     real regression forever. *)
  let clamped = Gate.check_medians b ~calib_now:5.0 [ ("a", 1.0) ] in
  check "clamp keeps huge slowdowns failing" (not (Gate.all_pass clamped)) true

let test_missing_group_fails () =
  let b = mk_baseline [ mk_group "a" 0.020; mk_group "gone" 0.030 ] in
  let verdicts = Gate.check_medians b ~calib_now:b.Gate.b_calib_s [ ("a", 0.020) ] in
  let gone = List.find (fun v -> v.Gate.v_group = "gone") verdicts in
  check "unmeasured baseline group regresses" gone.Gate.v_regressed true;
  check "its now-time is nan" (Float.is_nan gone.Gate.v_now_s) true;
  check "gate fails overall" (not (Gate.all_pass verdicts)) true

let with_temp_file suffix f =
  let path = Filename.temp_file "semimatch_gate" suffix in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

let test_baseline_roundtrip () =
  let b =
    mk_baseline ~calib:0.0671
      [ mk_group ~mad:0.0003 "FG/SGH" 0.0212; mk_group ~mad:0.0011 "FG/exact-dfs" 0.0274 ]
  in
  with_temp_file ".json" (fun path ->
      Gate.write_baseline path b;
      let b' = Gate.load_baseline path in
      check "calibration survives" (b'.Gate.b_calib_s = b.Gate.b_calib_s) true;
      check "groups survive" (b'.Gate.b_groups = b.Gate.b_groups) true)

let test_trajectory_append () =
  let b = mk_baseline [ mk_group "a" 0.020 ] in
  let verdicts = Gate.check_medians b ~calib_now:0.05 [ ("a", 0.021) ] in
  with_temp_file ".json" (fun path ->
      Sys.remove path;
      Gate.append_trajectory path ~calib_s:0.05 verdicts;
      Gate.append_trajectory path ~calib_s:0.06 verdicts;
      let ic = open_in path in
      let lines =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            let rec go acc =
              match input_line ic with l -> go (l :: acc) | exception End_of_file -> List.rev acc
            in
            go [])
      in
      check_int "one row per append" 2 (List.length lines);
      List.iter
        (fun line ->
          let json = Obs.Json.of_string line in
          check "row type is trajectory"
            (Obs.Json.member "type" json = Some (Obs.Json.Str "trajectory"))
            true;
          check "row records the group"
            (match Obs.Json.member "groups" json with
            | Some (Obs.Json.Obj [ ("a", _) ]) -> true
            | _ -> false)
            true)
        lines)

(* The live pipeline on real (fast, synthetic) workloads: write a baseline,
   re-check it — identical code passes, an injected 3x slowdown exits via
   the failing verdict.  This is the in-process version of the CI dry-run. *)
let test_live_gate_roundtrip () =
  let spin label =
    ( label,
      fun () ->
        let acc = ref 0 in
        for i = 1 to 20_000 do
          acc := !acc + (i land 7)
        done;
        ignore (Sys.opaque_identity !acc) )
  in
  let workloads = [ spin "spin.a"; spin "spin.b" ] in
  let b = Gate.baseline_of_workloads ~samples:3 workloads in
  check_int "baseline covers the workloads" 2 (List.length b.Gate.b_groups);
  let verdicts, _calib = Gate.check ~samples:3 b workloads in
  check "unchanged code passes" (Gate.all_pass verdicts) true;
  let slowed, _calib = Gate.check ~slowdown:3.0 ~samples:3 b workloads in
  check "injected 3x slowdown fails" (not (Gate.all_pass slowed)) true

let suite =
  [
    Alcotest.test_case "median/MAD math" `Quick test_median_mad;
    Alcotest.test_case "identical timings pass" `Quick test_identical_times_pass;
    Alcotest.test_case "3x slowdown fails" `Quick test_3x_slowdown_fails;
    Alcotest.test_case "calibration scales the bands" `Quick test_calibration_scaling;
    Alcotest.test_case "missing group fails the gate" `Quick test_missing_group_fails;
    Alcotest.test_case "baseline file round-trips" `Quick test_baseline_roundtrip;
    Alcotest.test_case "trajectory rows append" `Quick test_trajectory_append;
    Alcotest.test_case "live gate round-trip" `Quick test_live_gate_roundtrip;
  ]
