let () =
  Alcotest.run "semimatch"
    [
      ("prng", Test_prng.suite);
      ("obs", Test_obs.suite);
      ("trace", Test_trace.suite);
      ("gate", Test_gate.suite);
      ("ds", Test_ds.suite);
      ("bipartite", Test_bipartite.suite);
      ("matching", Test_matching.suite);
      ("hypergraph", Test_hyper.suite);
      ("semimatch", Test_semimatch.suite);
      ("harvey", Test_harvey.suite);
      ("io", Test_io.suite);
      ("simulator", Test_simulator.suite);
      ("faults", Test_faults.suite);
      ("randomized", Test_randomized.suite);
      ("parallel", Test_parallel.suite);
      ("property", Test_property.suite);
      ("differential", Test_differential.suite);
      ("exact-engines", Test_exact_engines.suite);
      ("determinism", Test_determinism.suite);
      ("invariants", Test_invariants.suite);
      ("annealing", Test_annealing.suite);
      ("golden", Test_golden.suite);
      ("models", Test_models.suite);
      ("cli", Test_cli.suite);
      ("sched", Test_sched.suite);
      ("experiments", Test_experiments.suite);
      ("online", Test_online.suite);
      ("server", Test_server.suite);
      ("recorder", Test_recorder.suite);
      ("durability", Test_durability.suite);
      ("stream", Test_stream.suite);
    ]
