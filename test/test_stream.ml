(* Streaming subsystem tests: the binary edge-stream format (round-trip,
   version tag, flags, corruption/truncation reports), generator byte-
   identity between the streamed and in-core paths, the Konrad–Rosén
   solvers (feasibility, proven factors vs the raced exact optimum on ~100
   random instances, memory bounds), the ingest tier decision, and the
   daemon's chunked stream_begin/stream_chunk/stream_end ops over the
   in-process loopback. *)

module Sio = Hyper.Stream_io
module Kr = Stream.Kr
module Ingest = Stream.Ingest
module H = Hyper.Graph
module Prng = Randkit.Prng
module J = Obs.Json

let check = Alcotest.(check bool)

let with_temp f =
  let path = Filename.temp_file "test-stream" ".sms" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let equal_hypergraphs a b =
  a.H.n1 = b.H.n1 && a.H.n2 = b.H.n2 && a.H.task_off = b.H.task_off && a.H.h_off = b.H.h_off
  && a.H.h_adj = b.H.h_adj && a.H.w = b.H.w

let sample () =
  H.create ~n1:3 ~n2:4
    ~hyperedges:
      [
        (0, [| 0 |], 2.5);
        (0, [| 1; 2 |], 1.0);
        (1, [| 3 |], 4.0);
        (2, [| 0; 1; 2; 3 |], 0.5);
      ]

(* --- format ------------------------------------------------------------- *)

let test_roundtrip () =
  with_temp (fun path ->
      let h = sample () in
      Sio.save path h;
      check "graph round-trips through the stream file" true (equal_hypergraphs h (Sio.load path));
      let r = Sio.open_reader path in
      Fun.protect
        ~finally:(fun () -> Sio.close_reader r)
        (fun () ->
          let hdr = Sio.header r in
          Alcotest.(check int) "version tag" Sio.version hdr.Sio.h_version;
          Alcotest.(check int) "records sealed" 4 hdr.Sio.h_records;
          Alcotest.(check int) "pins sealed" 8 hdr.Sio.h_pins;
          check "sealed" true (Sio.sealed hdr);
          check "not singleton (multi-proc configs)" false (Sio.singleton hdr);
          check "not unit weight" false (Sio.unit_weight hdr);
          check "task grouped (create order)" true (Sio.task_grouped hdr)))

(* Satellite 1: the text `.hg` format is untouched by the new tier — a graph
   sent through the binary stream renders byte-identically. *)
let test_hg_text_compat () =
  with_temp (fun path ->
      let h = sample () in
      let before = Hyper.Io.to_string h in
      Sio.save path h;
      let after = Hyper.Io.to_string (Sio.load path) in
      Alcotest.(check string) ".hg text byte-identical after stream round-trip" before after)

let test_flags_track_content () =
  with_temp (fun path ->
      let w = Sio.create_writer ~path ~n1:4 ~n2:3 () in
      Sio.add w ~task:2 ~procs:[| 0 |] ~weight:1.0;
      Sio.add w ~task:0 ~procs:[| 1 |] ~weight:1.0;
      (* out of order *)
      Sio.close_writer w;
      let r = Sio.open_reader path in
      let hdr = Sio.header r in
      Sio.close_reader r;
      check "singleton" true (Sio.singleton hdr);
      check "unit weight" true (Sio.unit_weight hdr);
      check "not task-grouped after descending ids" false (Sio.task_grouped hdr))

let test_validate_ok () =
  with_temp (fun path ->
      let w = Sio.create_writer ~chunk_records:8 ~path ~n1:50 ~n2:5 () in
      for v = 0 to 49 do
        Sio.add w ~task:v ~procs:[| v mod 5 |] ~weight:1.0
      done;
      Sio.close_writer w;
      let rep = Sio.validate path in
      check "no error" true (rep.Sio.r_error = None);
      check "sealed" true rep.Sio.r_sealed;
      check "counts match" true rep.Sio.r_counts_match;
      Alcotest.(check int) "records" 50 rep.Sio.r_records;
      check "multiple chunks" true (rep.Sio.r_chunks > 1))

let test_validate_truncated () =
  with_temp (fun path ->
      let w = Sio.create_writer ~chunk_records:8 ~path ~n1:20 ~n2:4 () in
      for v = 0 to 19 do
        Sio.add w ~task:v ~procs:[| v mod 4 |] ~weight:1.0
      done;
      Sio.close_writer w;
      let size = (Unix.stat path).Unix.st_size in
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
      Unix.ftruncate fd (size - 3);
      Unix.close fd;
      let rep = Sio.validate path in
      check "truncation reported" true (rep.Sio.r_error <> None);
      check "counts mismatch" true (not rep.Sio.r_counts_match);
      check "valid prefix counted" true (rep.Sio.r_records > 0 && rep.Sio.r_records < 20))

let test_validate_corrupt () =
  with_temp (fun path ->
      let w = Sio.create_writer ~path ~n1:10 ~n2:4 () in
      for v = 0 to 9 do
        Sio.add w ~task:v ~procs:[| v mod 4 |] ~weight:1.0
      done;
      Sio.close_writer w;
      (* Flip one payload byte of the first chunk (header 36B + 8B frame head). *)
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
      ignore (Unix.lseek fd (Sio.header_bytes + 10) Unix.SEEK_SET);
      let b = Bytes.create 1 in
      ignore (Unix.read fd b 0 1);
      ignore (Unix.lseek fd (Sio.header_bytes + 10) Unix.SEEK_SET);
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
      ignore (Unix.write fd b 0 1);
      Unix.close fd;
      let rep = Sio.validate path in
      check "corruption reported" true (rep.Sio.r_error <> None);
      (* The strict reader must refuse the same bytes. *)
      let r = Sio.open_reader path in
      (match Sio.iter r (fun ~task:_ ~procs:_ ~weight:_ -> ()) with
      | () -> Alcotest.fail "iter accepted a corrupt chunk"
      | exception Failure _ -> ());
      Sio.close_reader r)

let test_unsealed_detected () =
  with_temp (fun path ->
      let w = Sio.create_writer ~path ~n1:4 ~n2:2 () in
      for v = 0 to 3 do
        Sio.add w ~task:v ~procs:[| v mod 2 |] ~weight:1.0
      done;
      Sio.close_writer w;
      (* Un-seal by restoring the all-ones count fields (records at byte 20,
         pins at 28 — the layout the module documents). *)
      Alcotest.(check int) "documented header size" 36 Sio.header_bytes;
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
      ignore (Unix.lseek fd 20 Unix.SEEK_SET);
      ignore (Unix.write fd (Bytes.make 16 '\xff') 0 16);
      Unix.close fd;
      let rep = Sio.validate path in
      check "unsealed detected" true (not rep.Sio.r_sealed);
      (match Ingest.solve path with
      | _ -> Alcotest.fail "ingest accepted an unsealed stream"
      | exception Failure msg -> check "ingest names the cause" true (contains ~needle:"unsealed" msg)))

(* --- generator byte-identity -------------------------------------------- *)

(* Satellite 2: with Unit weights, streaming a generator emits exactly the
   instance the in-core builder would have built — record for record. *)
let test_gen_stream_identity () =
  List.iter
    (fun family ->
      let mk_rng () = Prng.create ~seed:42 in
      let incore =
        Hyper.Generate.generate (mk_rng ()) ~family ~n:60 ~p:12 ~dv:3 ~dh:4 ~g:3
          ~weights:Hyper.Weights.Unit
      in
      let edges = ref [] in
      let n =
        Hyper.Generate.stream (mk_rng ()) ~family ~n:60 ~p:12 ~dv:3 ~dh:4 ~g:3
          ~weights:Hyper.Weights.Unit ~emit:(fun ~task ~procs ~weight ->
            edges := (task, Array.copy procs, weight) :: !edges)
      in
      let streamed = H.create ~n1:60 ~n2:12 ~hyperedges:(List.rev !edges) in
      check
        (Hyper.Generate.family_name family ^ " streamed instance identical")
        true
        (equal_hypergraphs incore streamed);
      Alcotest.(check int) "edge count returned" (H.num_hyperedges incore) n)
    [ Hyper.Generate.Fewg_manyg; Hyper.Generate.Hilo ]

let test_gen_sp_stream_identity () =
  let collect family =
    let rng = Prng.create ~seed:11 in
    let pairs = ref [] in
    ignore
      (Hyper.Generate.stream_sp rng ~family ~n:40 ~p:8 ~g:2 ~d:3 ~emit:(fun ~task ~proc ->
           pairs := (task, proc) :: !pairs)
        : int);
    List.rev !pairs
  in
  let rows_fewg = Bipartite.Fewg_manyg.adjacency (Prng.create ~seed:11) ~n1:40 ~n2:8 ~g:2 ~d:3 in
  let rows_hilo = Bipartite.Hilo.adjacency ~n1:40 ~n2:8 ~g:2 ~d:3 in
  let expected rows =
    List.concat (List.mapi (fun v row -> List.map (fun p -> (v, p)) (Array.to_list row))
                   (Array.to_list rows))
  in
  check "fewg-manyg streamed = adjacency" true (collect Hyper.Generate.Fewg_manyg = expected rows_fewg);
  check "hilo streamed = adjacency" true (collect Hyper.Generate.Hilo = expected rows_hilo)

(* --- solvers: feasibility, proven factors, differential vs exact --------- *)

(* One random SINGLEPROC-UNIT case: every task gets 1..3 distinct
   processors, so the instance is always feasible. *)
let random_sp_case rng =
  let n = 2 + Prng.int rng 40 and p = 1 + Prng.int rng 10 in
  let adj =
    Array.init n (fun _ ->
        let k = 1 + Prng.int rng (min 3 p) in
        Prng.sample_without_replacement rng ~k ~n:p)
  in
  (n, p, adj)

let write_sp_case path (n, p, adj) =
  let w = Sio.create_writer ~chunk_records:16 ~path ~n1:n ~n2:p () in
  Array.iteri
    (fun v procs -> Array.iter (fun q -> Sio.add w ~task:v ~procs:[| q |] ~weight:1.0) procs)
    adj;
  Sio.close_writer w

let check_sp_solution ~name ~n ~p ~adj ~opt (sol : Kr.solution) =
  let a =
    match sol.Kr.assignment with
    | Some a -> a
    | None -> Alcotest.failf "%s: no assignment" name
  in
  Alcotest.(check int) (name ^ ": assignment length") n (Array.length a);
  let loads = Array.make p 0 in
  Array.iteri
    (fun v q ->
      if not (Array.exists (( = ) q) adj.(v)) then
        Alcotest.failf "%s: task %d assigned to %d, not one of its processors" name v q;
      loads.(q) <- loads.(q) + 1)
    a;
  let max_load = Array.fold_left max 0 loads in
  Alcotest.(check (float 1e-9)) (name ^ ": makespan = max recomputed load")
    (float_of_int max_load) sol.Kr.makespan;
  if sol.Kr.makespan +. 1e-9 < opt then
    Alcotest.failf "%s: makespan %g below the optimum %g" name sol.Kr.makespan opt;
  if sol.Kr.lower_bound > opt +. 1e-9 then
    Alcotest.failf "%s: streamed LB %g above the optimum %g" name sol.Kr.lower_bound opt;
  if sol.Kr.makespan > (sol.Kr.factor *. opt) +. 1e-9 then
    Alcotest.failf "%s: makespan %g beyond proven factor %g of optimum %g" name sol.Kr.makespan
      sol.Kr.factor opt;
  check (name ^ ": at least one pass") true (sol.Kr.passes >= 1)

(* Satellite 3: the differential suite — 100 random instances, streamed
   makespans checked against the raced exact engines on the same graph. *)
let test_differential_vs_exact () =
  let rng = Prng.create ~seed:2024 in
  for case = 1 to 100 do
    let n, p, adj = random_sp_case rng in
    let edges =
      List.concat
        (List.mapi
           (fun v procs -> List.map (fun q -> (v, q)) (Array.to_list procs))
           (Array.to_list adj))
    in
    let g = Bipartite.Graph.unit_weights ~n1:n ~n2:p ~edges in
    let exact, _engine = Semimatch.Portfolio.solve_exact_unit ~jobs:1 g in
    let opt = float_of_int exact.Semimatch.Exact_unit.makespan in
    with_temp (fun path ->
        write_sp_case path (n, p, adj);
        let solve f =
          let r = Sio.open_reader path in
          Fun.protect ~finally:(fun () -> Sio.close_reader r) (fun () -> f r)
        in
        let tag s = Printf.sprintf "case %d (n=%d p=%d) %s" case n p s in
        check_sp_solution ~name:(tag "one-pass") ~n ~p ~adj ~opt (solve Kr.one_pass);
        check_sp_solution ~name:(tag "few-pass") ~n ~p ~adj ~opt (solve Kr.few_pass);
        (* The ingest in-core tier must reproduce the exact optimum. *)
        let o = Ingest.solve ~threshold_words:max_int path in
        Alcotest.(check (float 1e-9)) (tag "ingest exact = optimum") opt o.Ingest.makespan)
  done

(* General MULTIPROC streams: the online greedy must commit real
   configurations and report the same refined LB the in-core bound gives. *)
let test_online_greedy_general () =
  let rng = Prng.create ~seed:7 in
  for case = 1 to 30 do
    let n1 = 2 + Prng.int rng 12 and n2 = 2 + Prng.int rng 6 in
    let edges = ref [] in
    for v = 0 to n1 - 1 do
      let d = 1 + Prng.int rng 3 in
      for _ = 1 to d do
        let k = 1 + Prng.int rng (min 3 n2) in
        let procs = Prng.sample_without_replacement rng ~k ~n:n2 in
        let w = [| 1.0; 0.5; 2.0 |].(Prng.int rng 3) in
        edges := (v, procs, w) :: !edges
      done
    done;
    let hyperedges = List.rev !edges in
    let h = H.create ~n1 ~n2 ~hyperedges in
    with_temp (fun path ->
        let w = Sio.create_writer ~path ~n1 ~n2 () in
        List.iter (fun (v, procs, wt) -> Sio.add w ~task:v ~procs ~weight:wt) hyperedges;
        Sio.close_writer w;
        let chosen = Hashtbl.create 16 in
        let r = Sio.open_reader path in
        let sol =
          Fun.protect
            ~finally:(fun () -> Sio.close_reader r)
            (fun () ->
              Kr.online_greedy
                ~on_choice:(fun ~task ~procs ~weight ->
                  Hashtbl.replace chosen task (Array.copy procs, weight))
                r)
        in
        let tag s = Printf.sprintf "online case %d %s" case s in
        Alcotest.(check int) (tag "every task decided") n1 (Hashtbl.length chosen);
        let loads = Array.make n2 0.0 in
        Hashtbl.iter
          (fun task (procs, weight) ->
            if
              not
                (List.exists
                   (fun (v, ps, wt) -> v = task && ps = procs && wt = weight)
                   hyperedges)
            then Alcotest.failf "%s: task %d got a configuration not in the instance" (tag "") task;
            Array.iter (fun q -> loads.(q) <- loads.(q) +. weight) procs)
          chosen;
        let max_load = Array.fold_left max 0.0 loads in
        Alcotest.(check (float 1e-9)) (tag "makespan = recomputed bottleneck") max_load
          sol.Kr.makespan;
        Alcotest.(check (float 1e-9)) (tag "streamed LB = in-core refined LB")
          (Semimatch.Lower_bound.multiproc_refined h)
          sol.Kr.lower_bound;
        check (tag "makespan >= LB") true (sol.Kr.makespan +. 1e-9 >= sol.Kr.lower_bound))
  done

(* --- ingest tiers and memory bounds ------------------------------------- *)

let test_ingest_tiers () =
  with_temp (fun path ->
      write_sp_case path
        (20, 4, Array.init 20 (fun v -> [| v mod 4; (v + 1) mod 4 |]));
      let incore = Ingest.solve path in
      check "small instance lands in core" true (incore.Ingest.tier = Ingest.In_core_exact);
      Alcotest.(check (float 1e-9)) "exact tier factor" 1.0 incore.Ingest.factor;
      check "graph materialized" true (incore.Ingest.graph <> None);
      let few = Ingest.solve ~threshold_words:0 path in
      check "threshold 0 forces the stream"
        true
        (few.Ingest.tier = Ingest.Stream_kr Kr.Few_pass_log);
      check "no graph in the streamed tier" true (few.Ingest.graph = None);
      let one = Ingest.solve ~threshold_words:0 ~stream_solver:Ingest.One_pass path in
      check "solver override" true (one.Ingest.tier = Ingest.Stream_kr Kr.One_pass_sqrt);
      check "streamed makespans honour factors" true
        (few.Ingest.makespan <= (few.Ingest.factor *. incore.Ingest.makespan) +. 1e-9
        && one.Ingest.makespan <= (one.Ingest.factor *. incore.Ingest.makespan) +. 1e-9));
  (* A general stream below the threshold must fall to the online greedy. *)
  with_temp (fun path ->
      let w = Sio.create_writer ~path ~n1:4 ~n2:3 () in
      for v = 0 to 3 do
        Sio.add w ~task:v ~procs:[| v mod 3; (v + 1) mod 3 |] ~weight:2.0
      done;
      Sio.close_writer w;
      let o = Ingest.solve ~threshold_words:0 path in
      check "general stream gets the online greedy" true
        (o.Ingest.tier = Ingest.Stream_kr Kr.Online_greedy))

let test_memory_bound () =
  with_temp (fun path ->
      let n = 20_000 and p = 100 in
      let rng = Prng.create ~seed:5 in
      let w = Sio.create_writer ~path ~n1:n ~n2:p () in
      for v = 0 to n - 1 do
        Array.iter
          (fun q -> Sio.add w ~task:v ~procs:[| q |] ~weight:1.0)
          (Prng.sample_without_replacement rng ~k:4 ~n:p)
      done;
      Sio.close_writer w;
      let r = Sio.open_reader path in
      let csr =
        match Sio.csr_estimate_words (Sio.header r) with
        | Some wds -> wds
        | None -> Alcotest.fail "sealed stream without a CSR estimate"
      in
      let few = Fun.protect ~finally:(fun () -> Sio.close_reader r) (fun () -> Kr.few_pass r) in
      check "solver state well below the avoided CSR" true (few.Kr.state_words * 4 < csr);
      check "peak gauge covers the run" true (Kr.peak_state_words () >= few.Kr.state_words))

(* --- daemon ops over the loopback ---------------------------------------- *)

let line fields = J.to_string (J.Obj fields)

let field reply name =
  match J.member name (J.of_string reply) with
  | Some v -> v
  | None -> Alcotest.failf "reply lacks %S: %s" name reply

let num reply name =
  match field reply name with J.Num f -> f | _ -> Alcotest.failf "field %S not numeric" name

let is_ok reply = match field reply "ok" with J.Bool b -> b | _ -> false

let error_code reply =
  match J.member "error" (J.of_string reply) with Some (J.Str s) -> s | _ -> ""

let chunk_line session edges =
  line
    [
      ("op", J.Str "stream_chunk");
      ("session", J.Str session);
      ( "edges",
        J.List
          (List.map
             (fun (task, procs, weight) ->
               J.Obj
                 [
                   ("task", J.Num (float_of_int task));
                   ("weight", J.Num weight);
                   ("procs", J.List (List.map (fun q -> J.Num (float_of_int q)) procs));
                 ])
             edges) );
    ]

let test_daemon_stream_incore () =
  let lb = Server.Loopback.create () in
  let req l =
    let reply = Server.Loopback.request lb l in
    if not (is_ok reply) then Alcotest.failf "expected ok, got %s" reply;
    reply
  in
  ignore
    (req (line [ ("op", J.Str "stream_begin"); ("session", J.Str "s"); ("n1", J.Num 4.); ("n2", J.Num 2.) ]));
  ignore (req (chunk_line "s" [ (0, [ 0 ], 1.0); (1, [ 1 ], 1.0) ]));
  let r2 = req (chunk_line "s" [ (2, [ 0 ], 1.0); (3, [ 1 ], 1.0); (3, [ 0 ], 1.0) ]) in
  Alcotest.(check (float 0.0)) "records accumulate across chunks" 5.0 (num r2 "records");
  let fin = req (line [ ("op", J.Str "stream_end"); ("session", J.Str "s") ]) in
  check "small upload falls back in core" true (field fin "tier" = J.Str "incore-exact");
  check "session resident" true (field fin "resident" = J.Bool true);
  Alcotest.(check (float 1e-9)) "exact makespan" 2.0 (num fin "makespan");
  (* The resident session answers normal session ops now. *)
  let solved = req (line [ ("op", J.Str "solve"); ("session", J.Str "s") ]) in
  check "resident session solves" true (num solved "makespan" >= 1.0)

let test_daemon_stream_streamed () =
  let lb = Server.Loopback.create () in
  let req l = Server.Loopback.request lb l in
  ignore
    (req (line [ ("op", J.Str "stream_begin"); ("session", J.Str "t"); ("n1", J.Num 6.); ("n2", J.Num 2.) ]));
  ignore
    (req (chunk_line "t" (List.init 6 (fun v -> (v, [ v mod 2 ], 1.0)))));
  let fin =
    req
      (line
         [
           ("op", J.Str "stream_end");
           ("session", J.Str "t");
           ("threshold_mb", J.Num 0.);
           ("solver", J.Str "few-pass");
         ])
  in
  check "streamed tier" true (field fin "tier" = J.Str "stream-few-pass-log");
  check "no resident session" true (field fin "resident" = J.Bool false);
  check "factor recorded" true (num fin "factor" > 1.0);
  check "lower bound recorded" true (num fin "lower_bound" >= 3.0);
  let sessions = req (line [ ("op", J.Str "sessions") ]) in
  check "streamed solve left no session" true (field sessions "sessions" = J.List [])

let test_daemon_stream_errors () =
  let lb = Server.Loopback.create () in
  let req l = Server.Loopback.request lb l in
  let expect code reply =
    if is_ok reply then Alcotest.failf "expected %s error, got %s" code reply;
    Alcotest.(check string) ("error code " ^ code) code (error_code reply)
  in
  expect "bad_request" (req (chunk_line "nope" [ (0, [ 0 ], 1.0) ]));
  expect "bad_request" (req (line [ ("op", J.Str "stream_end"); ("session", J.Str "nope") ]));
  expect "bad_request"
    (req
       (line [ ("op", J.Str "stream_begin"); ("session", J.Str "x"); ("n1", J.Num (-1.)); ("n2", J.Num 2.) ]));
  ignore
    (req (line [ ("op", J.Str "stream_begin"); ("session", J.Str "x"); ("n1", J.Num 2.); ("n2", J.Num 2.) ]));
  (* Out-of-range edge poisons and drops the spool... *)
  expect "bad_request" (req (chunk_line "x" [ (7, [ 0 ], 1.0) ]));
  expect "bad_request" (req (chunk_line "x" [ (0, [ 0 ], 1.0) ]));
  (* ...and an unknown solver is rejected at stream_end. *)
  ignore
    (req (line [ ("op", J.Str "stream_begin"); ("session", J.Str "y"); ("n1", J.Num 2.); ("n2", J.Num 2.) ]));
  ignore (req (chunk_line "y" [ (0, [ 0 ], 1.0); (1, [ 1 ], 1.0) ]));
  expect "bad_request"
    (req
       (line
          [ ("op", J.Str "stream_end"); ("session", J.Str "y"); ("solver", J.Str "quantum") ]))

(* --- CLI: gen --stream-out, solve --stream, doctor (satellite 6) --------- *)

let cli =
  let exe_dir = Filename.dirname Sys.executable_name in
  let candidates =
    [
      Filename.concat exe_dir "../bin/semimatch_cli.exe";
      "../bin/semimatch_cli.exe";
      "_build/default/bin/semimatch_cli.exe";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> List.hd candidates

let run_capture args =
  let command = Filename.quote_command cli args ^ " 2>&1" in
  let ic = Unix.open_process_in command in
  let output = In_channel.input_all ic in
  let status = Unix.close_process_in ic in
  (status, output)

let expect_exit want (status, output) =
  (match status with
  | Unix.WEXITED c when c = want -> ()
  | Unix.WEXITED c -> Alcotest.failf "CLI exited %d (wanted %d): %s" c want output
  | _ -> Alcotest.failf "CLI killed: %s" output);
  output

let expect_failure (status, output) =
  (match status with
  | Unix.WEXITED 0 -> Alcotest.failf "CLI unexpectedly succeeded: %s" output
  | Unix.WEXITED _ -> ()
  | _ -> Alcotest.failf "CLI killed: %s" output);
  output

let test_cli_stream_pipeline () =
  with_temp (fun path ->
      let out =
        expect_exit 0
          (run_capture
             [ "gen-sp"; "--tasks"; "60"; "--procs"; "12"; "--groups"; "3"; "--degree"; "3";
               "--seed"; "2"; "--stream-out"; path ])
      in
      check "gen reports the stream" true (contains ~needle:"edge stream" out);
      let doc = expect_exit 0 (run_capture [ "doctor"; path ]) in
      check "doctor validates" true (contains ~needle:"stream OK" doc);
      check "doctor shows flags" true (contains ~needle:"singleton" doc);
      let solved = expect_exit 0 (run_capture [ "solve"; "--stream"; path ]) in
      check "in-core tier" true (contains ~needle:"incore-exact" solved);
      let streamed =
        expect_exit 0
          (run_capture [ "solve"; "--stream"; path; "--stream-threshold-mb"; "0" ])
      in
      check "forced streamed tier" true (contains ~needle:"stream-few-pass-log" streamed);
      check "memory line present" true (contains ~needle:"solver state" streamed);
      (* Truncate and doctor again: exit 1 with a framing diagnosis. *)
      let size = (Unix.stat path).Unix.st_size in
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
      Unix.ftruncate fd (size - 2);
      Unix.close fd;
      let bad = expect_failure (run_capture [ "doctor"; path ]) in
      check "doctor diagnoses the tear" true
        (contains ~needle:"error" (String.lowercase_ascii bad)))

let suite =
  [
    Alcotest.test_case "format round-trip + version tag" `Quick test_roundtrip;
    Alcotest.test_case "text .hg byte-compat (satellite 1)" `Quick test_hg_text_compat;
    Alcotest.test_case "flags track content" `Quick test_flags_track_content;
    Alcotest.test_case "validate: clean file" `Quick test_validate_ok;
    Alcotest.test_case "validate: truncated tail" `Quick test_validate_truncated;
    Alcotest.test_case "validate: corrupt payload" `Quick test_validate_corrupt;
    Alcotest.test_case "unsealed stream detected" `Quick test_unsealed_detected;
    Alcotest.test_case "generator stream = in-core instance" `Quick test_gen_stream_identity;
    Alcotest.test_case "gen-sp stream = bipartite adjacency" `Quick test_gen_sp_stream_identity;
    Alcotest.test_case "differential vs exact (100 instances)" `Quick test_differential_vs_exact;
    Alcotest.test_case "online greedy: general streams" `Quick test_online_greedy_general;
    Alcotest.test_case "ingest tier decision" `Quick test_ingest_tiers;
    Alcotest.test_case "memory bound vs CSR estimate" `Quick test_memory_bound;
    Alcotest.test_case "daemon: chunked upload, in-core fallback" `Quick test_daemon_stream_incore;
    Alcotest.test_case "daemon: forced streamed tier" `Quick test_daemon_stream_streamed;
    Alcotest.test_case "daemon: stream op errors" `Quick test_daemon_stream_errors;
    Alcotest.test_case "cli: gen/doctor/solve --stream" `Quick test_cli_stream_pipeline;
  ]
