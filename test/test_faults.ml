(* Fault tolerance: fault plans, incremental repair, degraded simulation,
   and deadline-bounded graceful degradation.  The differential tests here
   encode the subsystem's contract: repair is feasible on the surviving
   machine and never worse than a from-scratch re-solve, and the degraded
   simulator's event-level makespan equals the repaired load-vector maximum. *)

module H = Hyper.Graph
module F = Semimatch.Faults
module R = Semimatch.Repair
module D = Semimatch.Deadline
module A = Semimatch.Hyp_assignment
module G = Semimatch.Greedy_hyper

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

let instance ?(n = 60) ?(p = 12) ?(dv = 4) ?(g = 3) ~seed () =
  let rng = Randkit.Prng.create ~seed in
  Hyper.Generate.generate rng ~family:Hyper.Generate.Fewg_manyg ~n ~p ~dv ~dh:3 ~g
    ~weights:Hyper.Weights.Related

let expect_failure ?(fragment = "") f =
  match f () with
  | exception Failure msg ->
      check ("Failure mentions " ^ fragment) true
        (let nl = String.length fragment and hl = String.length msg in
         let rec scan i = i + nl <= hl && (String.sub msg i nl = fragment || scan (i + 1)) in
         scan 0)
  | _ -> Alcotest.fail "expected Failure"

(* --- fault-plan spec grammar --- *)

let test_spec_roundtrip () =
  let plan = F.of_string " crash:3, slow:1x2.5 ,stall:2@1+4,crash:5@2.5 " in
  Alcotest.(check string)
    "canonical form" "crash:3,slow:1x2.5,stall:2@1+4,crash:5@2.5" (F.to_string plan);
  check "roundtrip" true (F.of_string (F.to_string plan) = plan)

let test_spec_errors () =
  List.iter
    (fun spec -> expect_failure ~fragment:"Faults" (fun () -> F.of_string spec))
    [ ""; ","; "bogus"; "crash:"; "crash:x"; "slow:1"; "slow:ax2"; "stall:1@2"; "flood:3" ]

let test_degradation_validation () =
  expect_failure ~fragment:"out of range" (fun () ->
      F.degradation [ F.Crash { proc = 5; at = 0.0 } ] ~p:4);
  expect_failure ~fragment:"factor" (fun () ->
      F.degradation [ F.Slowdown { proc = 0; factor = 0.5 } ] ~p:4);
  expect_failure ~fragment:">= 0" (fun () ->
      F.degradation [ F.Stall { proc = 0; at = -1.0; dur = 2.0 } ] ~p:4);
  let d =
    F.degradation ~p:4
      [
        F.Slowdown { proc = 0; factor = 2.0 };
        F.Slowdown { proc = 0; factor = 3.0 };
        F.Stall { proc = 1; at = 1.0; dur = 2.0 };
        F.Stall { proc = 1; at = 2.0; dur = 3.0 };
        F.Crash { proc = 2; at = 5.0 };
        F.Crash { proc = 2; at = 2.0 };
      ]
  in
  checkf "slowdowns multiply" 6.0 d.F.speed.(0);
  check "stall windows merge" true (d.F.stalls.(1) = [| (1.0, 5.0) |]);
  check "earliest crash wins" true (d.F.dead.(2) && d.F.crash_at.(2) = 2.0)

let test_finish_time () =
  let d =
    F.degradation ~p:4
      [
        F.Slowdown { proc = 1; factor = 2.0 };
        F.Stall { proc = 2; at = 2.0; dur = 2.0 };
        F.Crash { proc = 3; at = 0.0 };
      ]
  in
  checkf "healthy proc: load itself" 3.5 (F.finish_time d 0 3.5);
  checkf "zero load is free" 0.0 (F.finish_time d 3 0.0);
  checkf "slowdown stretches" 7.0 (F.finish_time d 1 3.5);
  (* 3 units on proc 2: runs [0,2), pauses [2,4), finishes the last unit at 5. *)
  checkf "stall pauses work" 5.0 (F.finish_time d 2 3.0);
  check "dead proc never finishes" true (F.finish_time d 3 1.0 = infinity)

let test_random_crashes () =
  let rng = Randkit.Prng.create ~seed:7 in
  let plan = F.random_crashes rng ~p:16 ~kill_fraction:0.5 in
  Alcotest.(check int) "half the machine" 8 (List.length plan);
  check "all crashes at 0" true
    (List.for_all (function F.Crash { at; _ } -> at = 0.0 | _ -> false) plan);
  (* Reproducible per seed. *)
  let rng' = Randkit.Prng.create ~seed:7 in
  check "seeded determinism" true (F.random_crashes rng' ~p:16 ~kill_fraction:0.5 = plan);
  (* At least one survivor even at extreme fractions. *)
  let rng = Randkit.Prng.create ~seed:1 in
  let extreme = F.random_crashes rng ~p:4 ~kill_fraction:0.99 in
  check "a survivor remains" true (List.length extreme <= 3);
  check "bad fraction rejected" true
    (match F.random_crashes rng ~p:4 ~kill_fraction:1.0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- incremental repair: the differential contract --- *)

let assert_feasible h d (choice : int array) =
  Array.iteri
    (fun v e ->
      if e >= 0 then
        H.iter_h_procs h e (fun u ->
            if d.F.dead.(u) then
              Alcotest.failf "task %d placed on dead processor %d (edge %d)" v u e))
    choice

let test_repair_differential () =
  List.iter
    (fun (seed, kill_fraction) ->
      let h = instance ~seed () in
      let a = G.run G.Expected_vector_greedy_hyp h in
      let rng = Randkit.Prng.create ~seed:(seed + 100) in
      let plan =
        F.random_crashes rng ~p:h.H.n2 ~kill_fraction
        @ [ F.Slowdown { proc = 0; factor = 1.5 }; F.Stall { proc = 1; at = 1.0; dur = 2.0 } ]
      in
      let d = F.degradation plan ~p:h.H.n2 in
      let cost = F.finish_time d in
      let r = R.repair ~cost ~dead:d.F.dead h a in
      (* (1) Feasible on the surviving machine: no chosen configuration
         touches a dead processor. *)
      assert_feasible h d r.R.choice;
      (* (2) Never worse than throwing the schedule away. *)
      let scratch = R.resolve ~cost ~dead:d.F.dead h in
      check
        (Printf.sprintf "seed %d: repaired %g <= re-solve %g" seed r.R.makespan scratch.R.makespan)
        true
        (r.R.makespan <= scratch.R.makespan +. 1e-9);
      check "LB bounds the repair" true (r.R.lower_bound <= r.R.makespan +. 1e-9);
      (* (3) The fault-injected simulator agrees: event-level makespan equals
         the repaired load-vector maximum (no parts are lost because repair
         avoids dead processors entirely). *)
      let dt = Simulator.run_degraded d h r.R.choice in
      check "no parts lost after repair" true (dt.Simulator.lost = []);
      checkf
        (Printf.sprintf "seed %d: simulated = repaired makespan" seed)
        r.R.makespan dt.Simulator.d_trace.Simulator.makespan;
      (* Moved ⊆ affected ∪ everything (re-solve may move any task);
         incremental repairs only move affected tasks. *)
      if not r.R.resolved_from_scratch then
        List.iter
          (fun v -> check "incremental moves only affected tasks" true (List.mem v r.R.affected))
          r.R.moved)
    [ (11, 0.25); (12, 0.25); (13, 0.5); (14, 0.125); (15, 0.5) ]

let test_repair_slowdown_only () =
  (* No dead processors: nothing is affected, but the cost model still
     reprices the schedule, and the simulator must agree exactly. *)
  let h = instance ~seed:21 () in
  let a = G.run G.Sorted_greedy_hyp h in
  let d =
    F.degradation ~p:h.H.n2
      [ F.Slowdown { proc = 2; factor = 3.0 }; F.Stall { proc = 3; at = 0.5; dur = 1.5 } ]
  in
  let r = R.repair ~cost:(F.finish_time d) ~dead:d.F.dead h a in
  check "no task affected by slowdowns" true (r.R.affected = [] && r.R.infeasible = []);
  let dt = Simulator.run_degraded d h r.R.choice in
  checkf "simulated = repaired under slow+stall" r.R.makespan
    dt.Simulator.d_trace.Simulator.makespan

let test_repair_infeasible_reported () =
  (* Task 0 only knows processor 0; kill it.  The repair must report the
     task, keep the rest of the schedule valid, and never raise. *)
  let h =
    H.create ~n1:2 ~n2:2 ~hyperedges:[ (0, [| 0 |], 2.0); (1, [| 0 |], 1.0); (1, [| 1 |], 1.0) ]
  in
  let a = A.of_choices h [| 0; 1 |] in
  let dead = [| true; false |] in
  let r = R.repair ~dead h a in
  check "assignment withheld" true (r.R.assignment = None);
  check "task 0 infeasible" true (r.R.infeasible = [ 0 ]);
  check "task 0 unplaced" true (r.R.choice.(0) = -1);
  check "task 1 survives on proc 1" true (r.R.choice.(1) = 2);
  checkf "partial makespan still priced" 1.0 r.R.makespan;
  let d = F.degradation [ F.Crash { proc = 0; at = 0.0 } ] ~p:2 in
  let dt = Simulator.run_degraded d h r.R.choice in
  check "simulator reports it unscheduled" true (dt.Simulator.unscheduled = [ 0 ]);
  check "completion is infinite" true
    (dt.Simulator.d_trace.Simulator.task_completion.(0) = infinity)

let test_run_degraded_healthy_identity () =
  let h = instance ~seed:31 () in
  let a = G.run G.Sorted_greedy_hyp h in
  let t = Simulator.run ~policy:Simulator.Spt h a in
  let dt = Simulator.run_degraded ~policy:Simulator.Spt (F.healthy ~p:h.H.n2) h a.A.choice in
  check "no losses" true (dt.Simulator.lost = [] && dt.Simulator.unscheduled = []);
  check "identical trace under healthy plan" true (dt.Simulator.d_trace = t)

let test_run_degraded_loses_parts () =
  (* A late crash loses the parts that would finish after it; the victims
     are reported, not silently dropped. *)
  let h = instance ~seed:32 () in
  let a = G.run G.Sorted_greedy_hyp h in
  let t = Simulator.run h a in
  let victim = ref 0 in
  Array.iteri (fun u b -> if b > t.Simulator.proc_busy.(!victim) then victim := u)
    t.Simulator.proc_busy;
  let crash_at = t.Simulator.proc_busy.(!victim) /. 2.0 in
  let d = F.degradation [ F.Crash { proc = !victim; at = crash_at } ] ~p:h.H.n2 in
  let dt = Simulator.run_degraded d h a.A.choice in
  check "some task lost its part" true (dt.Simulator.lost <> []);
  List.iter
    (fun v ->
      check "lost tasks never complete" true
        (dt.Simulator.d_trace.Simulator.task_completion.(v) = infinity))
    dt.Simulator.lost

(* --- deadline-bounded graceful degradation --- *)

let test_deadline_generous_matches_portfolio () =
  (* dv = 4 over 60 tasks: the search space dwarfs the exact tier's bound,
     so an unhurried run must return the portfolio's bytes unchanged. *)
  let h = instance ~seed:41 () in
  let r = D.solve ~jobs:1 ~budget_s:60.0 h in
  let p = Semimatch.Portfolio.solve ~jobs:1 h in
  check "portfolio tier answered" true (r.D.tier = D.Tier_portfolio);
  check "not degraded" true (not r.D.degraded);
  checkf "same makespan" p.Semimatch.Portfolio.best_makespan r.D.makespan;
  check "byte-identical assignment" true
    (r.D.assignment.A.choice = p.Semimatch.Portfolio.assignment.A.choice)

let test_deadline_exhausted_budget_degrades () =
  let h = instance ~seed:41 () in
  let sgh = G.makespan G.Sorted_greedy_hyp h in
  let lb = Semimatch.Lower_bound.multiproc_refined h in
  check "instance is not greedy-trivial" true (sgh > lb);
  Obs.with_recording (fun () ->
      let r = D.solve ~jobs:1 ~budget_s:0.0 h in
      check "greedy tier is the floor" true (r.D.tier = D.Tier_greedy);
      checkf "the floor is SGH" sgh r.D.makespan;
      check "feasible schedule returned" true (A.is_valid h r.D.assignment);
      check "degradation flagged" true r.D.degraded;
      let names = List.map (fun e -> e.Obs.Events.e_name) (Obs.Events.records ()) in
      check "tier event logged" true (List.mem "deadline.tier" names);
      check "degradation event logged" true (List.mem "deadline.degraded" names))

let test_deadline_tight_budget_still_feasible () =
  (* The ISSUE's 1 ms case: whatever tier the clock reaches, the result is
     feasible and bounded below by the LB — never an exception. *)
  let h = instance ~n:800 ~p:48 ~seed:42 () in
  let r = D.solve ~jobs:1 ~budget_s:0.001 h in
  check "feasible under 1 ms" true (A.is_valid h r.D.assignment);
  check "LB respected" true (r.D.makespan >= r.D.lower_bound -. 1e-9);
  checkf "makespan is real" (A.makespan h r.D.assignment) r.D.makespan

let test_deadline_exact_tier_settles_tiny () =
  (* 8 tasks with <= 3 configurations each: the space fits the exact tier's
     bound, so a generous budget must return the brute-force optimum. *)
  let h = instance ~n:8 ~p:4 ~dv:3 ~g:2 ~seed:43 () in
  let opt, _ = Semimatch.Brute_force.multiproc h in
  let r = D.solve ~jobs:1 ~budget_s:60.0 h in
  checkf "optimal makespan" opt r.D.makespan;
  check "exact tier credited when it had to run" true
    (r.D.makespan <= r.D.lower_bound +. 1e-9 || r.D.tier = D.Tier_exact)

let suite =
  [
    Alcotest.test_case "spec roundtrip" `Quick test_spec_roundtrip;
    Alcotest.test_case "spec errors" `Quick test_spec_errors;
    Alcotest.test_case "degradation validation" `Quick test_degradation_validation;
    Alcotest.test_case "finish_time closed form" `Quick test_finish_time;
    Alcotest.test_case "random crashes" `Quick test_random_crashes;
    Alcotest.test_case "repair differential" `Quick test_repair_differential;
    Alcotest.test_case "repair under slowdown only" `Quick test_repair_slowdown_only;
    Alcotest.test_case "infeasible tasks reported" `Quick test_repair_infeasible_reported;
    Alcotest.test_case "degraded run, healthy plan = run" `Quick test_run_degraded_healthy_identity;
    Alcotest.test_case "late crash loses parts" `Quick test_run_degraded_loses_parts;
    Alcotest.test_case "generous deadline = portfolio bytes" `Quick
      test_deadline_generous_matches_portfolio;
    Alcotest.test_case "exhausted budget degrades to greedy" `Quick
      test_deadline_exhausted_budget_degrades;
    Alcotest.test_case "tight budget stays feasible" `Quick test_deadline_tight_budget_still_feasible;
    Alcotest.test_case "exact tier settles tiny instances" `Quick
      test_deadline_exact_tier_settles_tiny;
  ]
