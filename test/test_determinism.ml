(* Determinism under parallelism: fanning work out over domains must change
   wall-clock only, never results — rendered tables are compared byte for
   byte (after stripping the timing columns, which are genuinely
   nondeterministic).  Also the sharded-metrics contract: the merged value
   is exactly the sum of the per-domain shards. *)

module Pool = Parpool.Pool
module P = Semimatch.Portfolio

let test_sweep_identical_across_jobs () =
  let run jobs =
    Experiments.Sweep.run ~seeds:1 ~n:40 ~p:8 ~dvs:[ 2 ] ~dhs:[ 2; 3 ] ~gs:[ 4 ] ~jobs
      ~weights:Hyper.Weights.Related ()
  in
  let sequential = run 1 and parallel = run 4 in
  (* combo_result carries no timings, so whole rendered tables must match. *)
  Alcotest.(check string) "rendered sweep tables identical"
    (Experiments.Sweep.render sequential)
    (Experiments.Sweep.render parallel)

let test_runner_table_identical_across_jobs () =
  let spec =
    {
      Experiments.Instances.name = "DET-MP";
      family = Hyper.Generate.Hilo;
      n = 60;
      p = 12;
      dv = 2;
      dh = 3;
      g = 4;
    }
  in
  let strip rows =
    List.map
      (fun row ->
        List.map
          (fun r -> (r.Experiments.Runner.algo, r.Experiments.Runner.ratio))
          row.Experiments.Runner.results)
      rows
  in
  (* The full paper grid is too slow for a unit test; fan the same tiny spec
     out as four rows instead, exactly as [Runner.run ~jobs] does. *)
  let rows jobs =
    Pool.map_list ~jobs
      ~f:(fun s -> Experiments.Runner.run_row ~seeds:2 ~weights:Hyper.Weights.Unit s)
      [ spec; spec; spec; spec ]
  in
  Alcotest.(check bool) "ratio tables identical" true (strip (rows 1) = strip (rows 4))

let test_portfolio_identical_across_jobs () =
  let rng = Randkit.Prng.create ~seed:7 in
  for _ = 1 to 10 do
    let r = Randkit.Prng.split rng in
    let n1 = 10 + Randkit.Prng.int r 40 and n2 = 4 + Randkit.Prng.int r 8 in
    let hyperedges = ref [] in
    for v = 0 to n1 - 1 do
      let d = 1 + Randkit.Prng.int r 3 in
      for _ = 1 to d do
        let k = 1 + Randkit.Prng.int r (min 3 n2) in
        let procs = Randkit.Prng.sample_without_replacement r ~k ~n:n2 in
        hyperedges := (v, procs, float_of_int (1 + Randkit.Prng.int r 3)) :: !hyperedges
      done
    done;
    let h = Hyper.Graph.create ~n1 ~n2 ~hyperedges:!hyperedges in
    let m jobs = (P.solve ~jobs h).P.best_makespan in
    let sequential = m 1 in
    Alcotest.(check (float 0.0)) "jobs=2" sequential (m 2);
    Alcotest.(check (float 0.0)) "jobs=4" sequential (m 4);
    (* Without the cutoff the whole outcome list is deterministic, winner
       included. *)
    let outcomes jobs =
      List.map
        (fun o -> (P.solver_name o.P.o_solver, o.P.o_makespan))
        (P.solve ~jobs ~cutoff:false h).P.outcomes
    in
    Alcotest.(check bool) "outcome table identical without cutoff" true
      (outcomes 1 = outcomes 4)
  done

let test_exact_engines_identical_across_jobs () =
  (* The direct exact engines are pure functions of the instance bytes:
     repeated runs and any pool size must return byte-identical edge
     choices, not merely equal makespans.  Raced through the portfolio
     with a singleton engine list, the winner is forced, so the raced
     assignment must equal the sequential one at jobs 1, 4 and 8. *)
  let module E = Semimatch.Exact_unit in
  let rng = Randkit.Prng.create ~seed:23 in
  for _ = 1 to 8 do
    let r = Randkit.Prng.split rng in
    let n1 = 5 + Randkit.Prng.int r 40 and n2 = 2 + Randkit.Prng.int r 8 in
    let edges = ref [] in
    for v = 0 to n1 - 1 do
      let d = 1 + Randkit.Prng.int r (min 4 n2) in
      let procs = Randkit.Prng.sample_without_replacement r ~k:d ~n:n2 in
      Array.iter (fun u -> edges := (v, u) :: !edges) procs
    done;
    let g = Bipartite.Graph.unit_weights ~n1 ~n2 ~edges:!edges in
    List.iter
      (fun exact ->
        let name = E.exact_engine_name exact in
        let edges_of (s : E.solution) = s.E.assignment.Semimatch.Bip_assignment.edge in
        let reference = edges_of (E.solve_with ~exact g) in
        Alcotest.(check (array int))
          (name ^ " repeated run byte-identical") reference
          (edges_of (E.solve_with ~exact g));
        List.iter
          (fun jobs ->
            let s, _ = Semimatch.Portfolio.solve_exact_unit ~jobs ~engines:[ exact ] g in
            Alcotest.(check (array int))
              (Printf.sprintf "%s raced at jobs=%d byte-identical" name jobs)
              reference (edges_of s))
          [ 1; 4; 8 ])
      [ E.Gen_hk; E.Divide_conquer ];
    (* The full six-engine race: makespan independent of jobs. *)
    let m jobs = (fst (Semimatch.Portfolio.solve_exact_unit ~jobs g)).E.makespan in
    let sequential = m 1 in
    Alcotest.(check int) "race jobs=4" sequential (m 4);
    Alcotest.(check int) "race jobs=8" sequential (m 8)
  done

let test_merged_counters_equal_shard_sum () =
  let c = Obs.Metrics.counter "test.determinism.sharded" in
  Obs.with_recording (fun () ->
      (* Increments from the main domain, a raw spawned domain, and pool
         workers; the merged value must equal both the expected total and
         the sum of the per-domain shards. *)
      for _ = 1 to 10 do
        Obs.Metrics.incr c
      done;
      let d = Domain.spawn (fun () -> for _ = 1 to 5 do Obs.Metrics.incr c done) in
      Domain.join d;
      let items = Array.init 200 Fun.id in
      ignore (Pool.map ~jobs:4 ~f:(fun i -> Obs.Metrics.incr c; i) items);
      let total = Obs.Metrics.value c in
      Alcotest.(check int) "merged value" (10 + 5 + 200) total;
      let shard_sum = List.fold_left ( + ) 0 (Obs.Metrics.shard_values c) in
      Alcotest.(check int) "sum of shards = merged value" total shard_sum;
      Alcotest.(check bool) "several domains recorded" true (Obs.Metrics.shard_count () >= 2))

let test_local_diff_is_exact_under_concurrency () =
  let c = Obs.Metrics.counter "test.determinism.localdiff" in
  Obs.with_recording (fun () ->
      (* A sibling domain hammers the counter while the main domain diffs
         its own shard; the diff must see exactly the local increments. *)
      let stop = Atomic.make false in
      let noise =
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              Obs.Metrics.incr c
            done)
      in
      let snap = Obs.Metrics.local_snapshot () in
      for _ = 1 to 1234 do
        Obs.Metrics.incr c
      done;
      let counters, _histos = Obs.Metrics.diff_since snap in
      Atomic.set stop true;
      Domain.join noise;
      Alcotest.(check (list (pair string int)))
        "local delta unaffected by the other domain"
        [ ("test.determinism.localdiff", 1234) ]
        (List.filter (fun (n, _) -> n = "test.determinism.localdiff") counters))

let suite =
  [
    Alcotest.test_case "sweep tables identical across jobs" `Quick
      test_sweep_identical_across_jobs;
    Alcotest.test_case "runner ratio tables identical across jobs" `Quick
      test_runner_table_identical_across_jobs;
    Alcotest.test_case "portfolio makespans identical across jobs" `Quick
      test_portfolio_identical_across_jobs;
    Alcotest.test_case "direct exact engines byte-identical across jobs 1/4/8" `Quick
      test_exact_engines_identical_across_jobs;
    Alcotest.test_case "merged counters = sum of shards" `Quick
      test_merged_counters_equal_shard_sum;
    Alcotest.test_case "local shard diff exact under concurrency" `Quick
      test_local_diff_is_exact_under_concurrency;
  ]
