module Pool = Parpool.Pool
module Cancel = Parpool.Cancel
module Deque = Parpool.Deque

let check = Alcotest.(check bool)

let test_empty () = Alcotest.(check (array int)) "empty" [||] (Pool.map ~jobs:4 ~f:(fun x -> x) [||])

let test_identity_order () =
  let items = Array.init 1000 Fun.id in
  let out = Pool.map ~jobs:4 ~f:(fun x -> x * x) items in
  Alcotest.(check (array int)) "order preserved" (Array.map (fun x -> x * x) items) out

let test_matches_sequential () =
  let items = Array.init 200 (fun i -> i + 1) in
  let f x = (x * 31) mod 97 in
  Alcotest.(check (array int)) "parallel = sequential" (Pool.map ~jobs:1 ~f items)
    (Pool.map ~jobs:3 ~f items)

let test_exception_propagates () =
  let items = Array.init 50 Fun.id in
  match Pool.map ~jobs:4 ~f:(fun x -> if x = 17 then failwith "boom" else x) items with
  | exception Failure msg -> Alcotest.(check string) "message" "boom" msg
  | _ -> Alcotest.fail "expected exception"

let test_first_exception_in_order () =
  let items = Array.init 50 Fun.id in
  match
    Pool.map ~jobs:4
      ~f:(fun x -> if x = 40 then failwith "late" else if x = 10 then failwith "early" else x)
      items
  with
  | exception Failure msg -> Alcotest.(check string) "earliest item wins" "early" msg
  | _ -> Alcotest.fail "expected exception"

let test_jobs_validation () =
  Alcotest.check_raises "jobs 0" (Invalid_argument "Pool.map: jobs must be positive") (fun () ->
      ignore (Pool.map ~jobs:0 ~f:Fun.id [| 1 |]))

let test_map_list () =
  Alcotest.(check (list int)) "list wrapper" [ 2; 4; 6 ] (Pool.map_list ~jobs:2 ~f:(( * ) 2) [ 1; 2; 3 ])

let test_experiment_results_identical_across_jobs () =
  (* Quality numbers must be identical whatever the parallelism. *)
  let tiny =
    {
      Experiments.Instances.name = "POOL-MP";
      family = Hyper.Generate.Fewg_manyg;
      n = 80;
      p = 16;
      dv = 2;
      dh = 3;
      g = 4;
    }
  in
  let strip row =
    List.map (fun r -> (r.Experiments.Runner.algo, r.Experiments.Runner.ratio))
      row.Experiments.Runner.results
  in
  let sequential = Experiments.Runner.run_row ~seeds:2 ~weights:Hyper.Weights.Unit tiny in
  let via_pool =
    Pool.map ~jobs:2
      ~f:(fun spec -> Experiments.Runner.run_row ~seeds:2 ~weights:Hyper.Weights.Unit spec)
      [| tiny; tiny |]
  in
  Array.iter
    (fun row -> check "identical ratios" true (strip row = strip sequential))
    via_pool

let test_early_failure_drains () =
  (* A failure must skip the remaining work, not run the batch to completion
     before re-raising: with the failure up front, the vast majority of the
     1000 tasks are never executed.  The bound is loose (a few tasks may
     already be claimed into deques before the token trips) but far below
     the full batch, and the test also proves the pool neither hangs nor
     loses the original exception. *)
  let executed = Atomic.make 0 in
  let items = Array.init 1000 Fun.id in
  (match
     Pool.map ~jobs:4
       ~f:(fun x ->
         Atomic.incr executed;
         if x = 0 then failwith "first";
         x)
       items
   with
  | exception Failure msg -> Alcotest.(check string) "original exception" "first" msg
  | _ -> Alcotest.fail "expected exception");
  let ran = Atomic.get executed in
  check "skipped most of the batch" true (ran < 900)

let test_map_cancelled_token () =
  let token = Cancel.create () in
  Cancel.cancel token;
  Alcotest.check_raises "tripped before start" Cancel.Cancelled (fun () ->
      ignore (Pool.map ~cancel:token ~jobs:2 ~f:Fun.id (Array.init 10 Fun.id)))

let test_map_timeout () =
  (* A microscopic deadline trips between items; Cancelled must surface
     rather than a partial result. *)
  let token = Cancel.create ~timeout_s:1e-6 () in
  match
    Pool.map ~cancel:token ~jobs:1
      ~f:(fun x ->
        ignore (Sys.opaque_identity (Hashtbl.hash x));
        Unix.sleepf 0.002;
        x)
      (Array.init 50 Fun.id)
  with
  | exception Cancel.Cancelled -> ()
  | _ -> Alcotest.fail "expected Cancelled"

let test_race_first_wins_sequential () =
  Pool.with_pool ~jobs:1 (fun pool ->
      let idx, v =
        Pool.race pool
          [| (fun _ -> "first"); (fun _ -> Alcotest.fail "loser must be skipped") |]
      in
      Alcotest.(check int) "winner index" 0 idx;
      Alcotest.(check string) "winner value" "first" v)

let test_race_cancels_losers () =
  (* The loser spins on the shared token; the race only returns because the
     winner trips it, so returning at all is the assertion. *)
  Pool.with_pool ~jobs:2 (fun pool ->
      let idx, v =
        Pool.race pool
          [|
            (fun token ->
              while not (Cancel.is_cancelled token) do
                Domain.cpu_relax ()
              done;
              "spinner");
            (fun _ -> "quick");
          |]
      in
      check "some contender won" true (idx = 0 || idx = 1);
      check "value matches winner" true
        ((idx = 0 && v = "spinner") || (idx = 1 && v = "quick")))

let test_race_all_raise () =
  Pool.with_pool ~jobs:2 (fun pool ->
      match
        Pool.race pool [| (fun _ -> failwith "a"); (fun _ -> failwith "b") |]
      with
      | exception Failure msg -> Alcotest.(check string) "smallest index" "a" msg
      | _ -> Alcotest.fail "expected exception")

let test_race_best_deterministic () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let contenders = [| (fun _ -> 5); (fun _ -> 3); (fun _ -> 3); (fun _ -> 7) |] in
      let idx, v = Pool.race_best ~better:(fun a b -> a < b) pool contenders in
      Alcotest.(check int) "best value" 3 v;
      Alcotest.(check int) "earliest index wins ties" 1 idx)

let test_race_best_excludes_raisers () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let idx, v =
        Pool.race_best ~better:(fun a b -> a < b) pool
          [| (fun _ -> failwith "broken"); (fun _ -> 42) |]
      in
      Alcotest.(check int) "surviving index" 1 idx;
      Alcotest.(check int) "surviving value" 42 v)

let test_pool_reuse () =
  (* One persistent pool across several batches: epochs must not leak state
     from batch to batch. *)
  Pool.with_pool ~jobs:3 (fun pool ->
      for round = 1 to 5 do
        let out = Pool.map ~pool ~f:(fun x -> x + round) (Array.init 100 Fun.id) in
        Alcotest.(check (array int)) "round result" (Array.init 100 (fun i -> i + round)) out
      done)

let test_cancel_deadline () =
  let t = Cancel.create ~timeout_s:1e-9 () in
  Unix.sleepf 0.002;
  check "deadline passed" true (Cancel.is_cancelled t);
  check "never is inert" false (Cancel.is_cancelled Cancel.never);
  Cancel.cancel Cancel.never;
  check "never cannot trip" false (Cancel.is_cancelled Cancel.never)

let test_retry_fail_twice_then_succeed () =
  (* A flaky task that fails its first two attempts must complete on the
     third, with one "pool.retry" warning per retry recorded. *)
  let attempts = Atomic.make 0 in
  Obs.with_recording (fun () ->
      Pool.with_pool ~jobs:1 (fun pool ->
          let results =
            Pool.run_with_retry ~retries:2 ~backoff_s:1e-4 pool
              [|
                (fun _ ->
                  if Atomic.fetch_and_add attempts 1 < 2 then failwith "flaky";
                  "ok");
              |]
          in
          (match results.(0) with
          | Ok v -> Alcotest.(check string) "third attempt succeeds" "ok" v
          | Error _ -> Alcotest.fail "expected success after retries"));
      Alcotest.(check int) "three attempts made" 3 (Atomic.get attempts);
      let retries =
        List.filter (fun e -> e.Obs.Events.e_name = "pool.retry") (Obs.Events.records ())
      in
      Alcotest.(check int) "one retry event per backoff" 2 (List.length retries);
      List.iter
        (fun e -> check "retries are warnings" true (e.Obs.Events.e_level = Obs.Events.Warn))
        retries)

let test_retry_permanent_failure_isolated () =
  (* A permanently failing task must yield a structured failure after
     exhausting its attempts — while its siblings run to completion. *)
  let results =
    Pool.with_pool ~jobs:2 (fun pool ->
        Pool.run_with_retry ~retries:2 ~backoff_s:1e-4 pool
          [| (fun _ -> 10); (fun _ -> failwith "permanent"); (fun _ -> 30) |])
  in
  (match results.(1) with
  | Error f ->
      Alcotest.(check int) "all attempts used" 3 f.Pool.f_attempts;
      Alcotest.(check int) "failure names its task" 1 f.Pool.f_index;
      check "original exception kept" true (f.Pool.f_exn = Failure "permanent")
  | Ok _ -> Alcotest.fail "expected structured failure");
  check "siblings unharmed" true (results.(0) = Ok 10 && results.(2) = Ok 30)

let test_retry_per_attempt_timeout () =
  (* Each attempt gets a fresh deadline token; a body that polls it is cut
     off every attempt and the task ends as a structured failure. *)
  let attempts = Atomic.make 0 in
  let results =
    Pool.with_pool ~jobs:1 (fun pool ->
        Pool.run_with_retry ~retries:1 ~backoff_s:1e-4 ~timeout_s:1e-4 pool
          [|
            (fun token ->
              Atomic.incr attempts;
              while true do
                Cancel.check token;
                Domain.cpu_relax ()
              done);
          |])
  in
  (match results.(0) with
  | Error f ->
      Alcotest.(check int) "both attempts timed out" 2 f.Pool.f_attempts;
      check "Cancelled recorded" true (f.Pool.f_exn = Cancel.Cancelled)
  | Ok _ -> Alcotest.fail "expected timeout failure");
  Alcotest.(check int) "body actually ran twice" 2 (Atomic.get attempts)

let test_retry_validation () =
  Pool.with_pool ~jobs:1 (fun pool ->
      check "negative retries rejected" true
        (match Pool.run_with_retry ~retries:(-1) pool [| (fun _ -> ()) |] with
        | exception Invalid_argument _ -> true
        | _ -> false);
      check "negative backoff rejected" true
        (match Pool.run_with_retry ~backoff_s:(-0.1) pool [| (fun _ -> ()) |] with
        | exception Invalid_argument _ -> true
        | _ -> false))

let test_past_deadline_runs_nothing () =
  (* A deadline already in the past must cancel the batch before any task
     starts: zero executions, not one-then-stop. *)
  let token = Cancel.create ~timeout_s:1e-9 () in
  let deadline = Unix.gettimeofday () +. 0.002 in
  while Unix.gettimeofday () < deadline do
    Domain.cpu_relax ()
  done;
  check "token already tripped" true (Cancel.is_cancelled token);
  let executed = Atomic.make 0 in
  Pool.with_pool ~jobs:2 (fun pool ->
      Pool.run ~cancel:token pool (Array.init 50 (fun _ () -> Atomic.incr executed));
      Alcotest.(check int) "no task started" 0 (Atomic.get executed);
      (* Same contract through the hardened path: every slot reports an
         unstarted cancellation. *)
      let results = Pool.run_with_retry ~cancel:token pool [| (fun _ -> 1); (fun _ -> 2) |] in
      Array.iter
        (function
          | Error f ->
              check "never started" true (f.Pool.f_attempts = 0 && f.Pool.f_exn = Cancel.Cancelled)
          | Ok _ -> Alcotest.fail "task ran past a dead deadline")
        results);
  Alcotest.(check int) "retry path started nothing either" 0 (Atomic.get executed)

let test_deque_lifo_fifo () =
  let d = Deque.create ~capacity:2 () in
  for i = 1 to 100 do
    Deque.push d i
  done;
  Alcotest.(check int) "size" 100 (Deque.size d);
  Alcotest.(check (option int)) "owner pops newest" (Some 100) (Deque.pop d);
  Alcotest.(check (option int)) "thief steals oldest" (Some 1) (Deque.steal d);
  Alcotest.(check (option int)) "steal order" (Some 2) (Deque.steal d);
  Alcotest.(check (option int)) "pop order" (Some 99) (Deque.pop d);
  let d2 = Deque.create () in
  Alcotest.(check (option int)) "empty pop" None (Deque.pop d2);
  Alcotest.(check (option int)) "empty steal" None (Deque.steal d2)

let test_deque_concurrent_steal () =
  (* One owner pushes/pops, three thieves steal; every element must be taken
     exactly once. *)
  let n = 20_000 in
  let d = Deque.create () in
  let taken = Array.make n (Atomic.make 0) in
  for i = 0 to n - 1 do
    taken.(i) <- Atomic.make 0
  done;
  let stop = Atomic.make false in
  let thief () =
    let count = ref 0 in
    while not (Atomic.get stop) do
      match Deque.steal d with
      | Some x ->
          Atomic.incr taken.(x);
          incr count
      | None -> Domain.cpu_relax ()
    done;
    (* Drain whatever is left after the owner finished. *)
    let rec drain () =
      match Deque.steal d with
      | Some x ->
          Atomic.incr taken.(x);
          incr count;
          drain ()
      | None -> ()
    in
    drain ();
    !count
  in
  let thieves = List.init 3 (fun _ -> Domain.spawn thief) in
  let popped = ref 0 in
  for i = 0 to n - 1 do
    Deque.push d i;
    if i land 7 = 0 then
      match Deque.pop d with
      | Some x ->
          Atomic.incr taken.(x);
          incr popped
      | None -> ()
  done;
  Atomic.set stop true;
  let stolen = List.fold_left (fun acc t -> acc + Domain.join t) 0 thieves in
  Alcotest.(check int) "every element taken once" n (stolen + !popped);
  Array.iteri
    (fun i c ->
      if Atomic.get c <> 1 then
        Alcotest.failf "element %d taken %d times" i (Atomic.get c))
    taken

let suite =
  [
    Alcotest.test_case "empty input" `Quick test_empty;
    Alcotest.test_case "order preserved" `Quick test_identity_order;
    Alcotest.test_case "parallel = sequential" `Quick test_matches_sequential;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "first exception in item order" `Quick test_first_exception_in_order;
    Alcotest.test_case "jobs validation" `Quick test_jobs_validation;
    Alcotest.test_case "list wrapper" `Quick test_map_list;
    Alcotest.test_case "experiments identical across jobs" `Quick
      test_experiment_results_identical_across_jobs;
    Alcotest.test_case "early failure drains promptly" `Quick test_early_failure_drains;
    Alcotest.test_case "map on a cancelled token" `Quick test_map_cancelled_token;
    Alcotest.test_case "map timeout" `Quick test_map_timeout;
    Alcotest.test_case "race: first wins sequentially" `Quick test_race_first_wins_sequential;
    Alcotest.test_case "race: winner cancels losers" `Quick test_race_cancels_losers;
    Alcotest.test_case "race: all raise" `Quick test_race_all_raise;
    Alcotest.test_case "race_best: deterministic ties" `Quick test_race_best_deterministic;
    Alcotest.test_case "race_best: excludes raisers" `Quick test_race_best_excludes_raisers;
    Alcotest.test_case "pool reuse across batches" `Quick test_pool_reuse;
    Alcotest.test_case "cancel deadlines" `Quick test_cancel_deadline;
    Alcotest.test_case "retry: flaky task recovers" `Quick test_retry_fail_twice_then_succeed;
    Alcotest.test_case "retry: permanent failure isolated" `Quick
      test_retry_permanent_failure_isolated;
    Alcotest.test_case "retry: per-attempt timeout" `Quick test_retry_per_attempt_timeout;
    Alcotest.test_case "retry: argument validation" `Quick test_retry_validation;
    Alcotest.test_case "past deadline runs nothing" `Quick test_past_deadline_runs_nothing;
    Alcotest.test_case "deque LIFO/FIFO and growth" `Quick test_deque_lifo_fifo;
    Alcotest.test_case "deque concurrent steal" `Quick test_deque_concurrent_steal;
  ]
