(* Differential proof of the direct exact engines: every engine in
   Exact_unit.all_exact_engines must report the same optimal makespan on the
   same bytes, the load-vector-optimal engines (harvey, gen-hk, dnc) must
   produce the *same* sorted load vector (it is unique across optimal
   semi-matchings), and that vector must be lexicographically no worse than
   what the makespan-only binary searches return.  Instance families: HiLo,
   FewgManyg, the paper's adversarial traps, and a Chung–Lu-ish skewed
   generator whose machine popularity follows a power law.  Small instances
   are additionally cross-checked against brute force. *)

module G = Bipartite.Graph
module E = Semimatch.Exact_unit
module Ba = Semimatch.Bip_assignment
module Prng = Randkit.Prng

let engines = E.all_exact_engines
let direct = [ E.Harvey_online; E.Gen_hk; E.Divide_conquer ]

let int_loads g a = Array.map int_of_float (Ba.loads g a)

let sorted_desc loads =
  let v = Array.copy loads in
  Array.sort (fun a b -> compare b a) v;
  v

(* a <= b in lexicographic order over equal-length descending load vectors. *)
let lex_le a b =
  let n = Array.length a in
  let rec go i = i >= n || a.(i) < b.(i) || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let render v = String.concat "," (List.map string_of_int (Array.to_list v))

(* The full differential on one instance; [label] identifies the family and
   index on failure. *)
let check_instance ?(brute = false) label g =
  let solutions = List.map (fun exact -> (exact, E.solve_with ~exact g)) engines in
  let reference =
    match solutions with (_, s) :: _ -> s.E.makespan | [] -> assert false
  in
  List.iter
    (fun (exact, s) ->
      if not (Ba.is_valid g s.E.assignment) then
        Alcotest.failf "%s: %s returned an invalid assignment" label (E.exact_engine_name exact);
      if s.E.makespan <> reference then
        Alcotest.failf "%s: %s found makespan %d, reference %d" label
          (E.exact_engine_name exact) s.E.makespan reference;
      let loads = int_loads g s.E.assignment in
      let m = Array.fold_left max 0 loads in
      if m <> s.E.makespan then
        Alcotest.failf "%s: %s reports makespan %d but its loads give %d" label
          (E.exact_engine_name exact) s.E.makespan m)
    solutions;
  (* The optimal sorted load vector is unique; every load-vector-optimal
     engine must produce exactly it, and it lex-dominates every engine. *)
  let vector_of exact = sorted_desc (int_loads g (List.assoc exact solutions).E.assignment) in
  let optimal = vector_of E.Gen_hk in
  List.iter
    (fun exact ->
      let v = vector_of exact in
      if v <> optimal then
        Alcotest.failf "%s: %s load vector [%s] differs from gen-hk's optimal [%s]" label
          (E.exact_engine_name exact) (render v) (render optimal))
    direct;
  List.iter
    (fun (exact, s) ->
      let v = sorted_desc (int_loads g s.E.assignment) in
      if not (lex_le optimal v) then
        Alcotest.failf "%s: gen-hk vector [%s] not lex-<= %s's [%s]" label (render optimal)
          (E.exact_engine_name exact) (render v))
    solutions;
  (* Flow-time side of the same coin, through each engine's own report. *)
  let hk = Semimatch.Gen_hk.solve g and dc = Semimatch.Divide_conquer.solve g in
  let hv = Semimatch.Harvey.solve g in
  if hk.Semimatch.Gen_hk.total_flow_time <> hv.Semimatch.Harvey.total_flow_time then
    Alcotest.failf "%s: gen-hk flow time %d vs harvey %d" label
      hk.Semimatch.Gen_hk.total_flow_time hv.Semimatch.Harvey.total_flow_time;
  if dc.Semimatch.Divide_conquer.total_flow_time <> hv.Semimatch.Harvey.total_flow_time then
    Alcotest.failf "%s: dnc flow time %d vs harvey %d" label
      dc.Semimatch.Divide_conquer.total_flow_time hv.Semimatch.Harvey.total_flow_time;
  if brute then begin
    let opt_bf, _ = Semimatch.Brute_force.singleproc g in
    if Float.abs (opt_bf -. float_of_int reference) > 1e-9 then
      Alcotest.failf "%s: brute force %.17g vs engines %d" label opt_bf reference
  end

(* --- instance families ---------------------------------------------- *)

let hilo_grid () =
  (* 64 deterministic HiLo instances across sizes, groups and d. *)
  List.concat_map
    (fun (n1, n2) ->
      List.concat_map
        (fun g ->
          List.filter_map
            (fun d ->
              if g <= min n1 n2 then
                Some (Printf.sprintf "hilo-%d-%d-%d-%d" n1 n2 g d, Bipartite.Hilo.generate ~n1 ~n2 ~g ~d)
              else None)
            [ 1; 2; 3; 5 ])
        [ 1; 2; 4; 8 ])
    [ (9, 4); (16, 8); (25, 6); (40, 10) ]

let fewg_instances rng n =
  List.init n (fun i ->
      let r = Prng.split rng in
      let n1 = 4 + Prng.int r 40 and n2 = 2 + Prng.int r 10 in
      let g = 1 + Prng.int r (min n1 n2) and d = 1 + Prng.int r 4 in
      (Printf.sprintf "fewg-%d" i, Bipartite.Fewg_manyg.generate r ~n1 ~n2 ~g ~d))

let adversarial_instances () =
  (Printf.sprintf "adversarial-fig1", Bipartite.Adversarial.fig1 ())
  :: (Printf.sprintf "adversarial-double", Bipartite.Adversarial.double_sorted_trap ())
  :: (Printf.sprintf "adversarial-expected", Bipartite.Adversarial.expected_greedy_trap ())
  :: List.map
       (fun k ->
         (Printf.sprintf "adversarial-sorted-k%d" k, Bipartite.Adversarial.sorted_greedy_trap ~k))
       [ 1; 2; 3; 4; 5; 6; 7 ]

(* Chung–Lu-ish skew: machine u is drawn with probability proportional to
   1/(u+1), so a few machines are wildly popular — the shape that makes
   level decompositions deep and binary-search deadlines high. *)
let chung_lu rng ~n1 ~n2 =
  let weight = Array.init n2 (fun u -> 1.0 /. float_of_int (u + 1)) in
  let total = Array.fold_left ( +. ) 0.0 weight in
  let draw r =
    let x = Prng.float r total in
    let acc = ref 0.0 and pick = ref (n2 - 1) in
    (try
       Array.iteri
         (fun u w ->
           acc := !acc +. w;
           if x < !acc then begin
             pick := u;
             raise Exit
           end)
         weight
     with Exit -> ());
    !pick
  in
  let edges = ref [] in
  for v = 0 to n1 - 1 do
    let d = 1 + Prng.int rng 3 in
    let chosen = Hashtbl.create d in
    (* Rejection capped at 4 tries per slot keeps generation deterministic
       and fast; a task always keeps its first draw. *)
    for _ = 1 to d do
      let rec attempt tries =
        let u = draw rng in
        if (not (Hashtbl.mem chosen u)) || tries = 0 then u else attempt (tries - 1)
      in
      let u = attempt 3 in
      if not (Hashtbl.mem chosen u) then begin
        Hashtbl.add chosen u ();
        edges := (v, u) :: !edges
      end
    done
  done;
  G.unit_weights ~n1 ~n2 ~edges:(List.rev !edges)

let chung_lu_instances rng n =
  List.init n (fun i ->
      let r = Prng.split rng in
      let n1 = 4 + Prng.int r 50 and n2 = 2 + Prng.int r 12 in
      (Printf.sprintf "chung-lu-%d" i, chung_lu r ~n1 ~n2))

let test_all_families_agree () =
  let rng = Prng.create ~seed:701 in
  let instances =
    hilo_grid ()
    @ fewg_instances rng 110
    @ adversarial_instances ()
    @ chung_lu_instances rng 140
  in
  (* The acceptance bar is >= 300 instances; fail loudly if a family edit
     ever shrinks the pool below it. *)
  Alcotest.(check bool) "at least 300 instances" true (List.length instances >= 300);
  List.iter (fun (label, g) -> check_instance label g) instances

let test_small_instances_vs_brute_force () =
  let rng = Prng.create ~seed:702 in
  for i = 1 to 80 do
    let r = Prng.split rng in
    let n1 = 1 + Prng.int r 6 and n2 = 1 + Prng.int r 4 in
    let edges = ref [] in
    for v = 0 to n1 - 1 do
      let d = 1 + Prng.int r (min 2 n2) in
      let procs = Prng.sample_without_replacement r ~k:d ~n:n2 in
      Array.iter (fun u -> edges := (v, u) :: !edges) procs
    done;
    let g = G.unit_weights ~n1 ~n2 ~edges:!edges in
    check_instance ~brute:true (Printf.sprintf "small-%d" i) g
  done

let test_degenerate_shapes () =
  (* Empty task set, one task, all tasks on one machine, complete graph. *)
  let empty = G.unit_weights ~n1:0 ~n2:3 ~edges:[] in
  List.iter
    (fun exact ->
      let s = E.solve_with ~exact empty in
      Alcotest.(check int) "empty makespan" 0 s.E.makespan)
    engines;
  check_instance "one-task" (G.unit_weights ~n1:1 ~n2:1 ~edges:[ (0, 0) ]);
  check_instance "one-machine"
    (G.unit_weights ~n1:5 ~n2:1 ~edges:(List.init 5 (fun v -> (v, 0))));
  let complete =
    G.unit_weights ~n1:7 ~n2:3
      ~edges:(List.concat (List.init 7 (fun v -> List.init 3 (fun u -> (v, u)))))
  in
  check_instance "complete-7x3" complete

let test_engine_guarantees_reported () =
  List.iter
    (fun exact ->
      let expected =
        match exact with
        | E.Binary_search _ -> E.Makespan_optimal
        | E.Harvey_online | E.Gen_hk | E.Divide_conquer -> E.Load_vector_optimal
      in
      Alcotest.(check bool)
        (E.exact_engine_name exact ^ " guarantee")
        true
        (E.exact_engine_guarantee exact = expected);
      let g = G.unit_weights ~n1:3 ~n2:2 ~edges:[ (0, 0); (0, 1); (1, 0); (2, 1) ] in
      let s = E.solve_with ~exact g in
      Alcotest.(check bool)
        (E.exact_engine_name exact ^ " solution guarantee")
        true (s.E.guarantee = expected))
    engines

let test_portfolio_race_covers_all_engines () =
  (* Racing any engine subset returns the same makespan; jobs just changes
     who wins. *)
  let rng = Prng.create ~seed:703 in
  for _ = 1 to 20 do
    let r = Prng.split rng in
    let n1 = 2 + Prng.int r 20 and n2 = 1 + Prng.int r 6 in
    let edges = ref [] in
    for v = 0 to n1 - 1 do
      let d = 1 + Prng.int r (min 3 n2) in
      let procs = Prng.sample_without_replacement r ~k:d ~n:n2 in
      Array.iter (fun u -> edges := (v, u) :: !edges) procs
    done;
    let g = G.unit_weights ~n1 ~n2 ~edges:!edges in
    let reference = (E.solve g).E.makespan in
    List.iter
      (fun jobs ->
        let s, _winner = Semimatch.Portfolio.solve_exact_unit ~jobs g in
        Alcotest.(check int) "raced makespan" reference s.E.makespan)
      [ 1; 4 ]
  done

let suite =
  [
    Alcotest.test_case "all engines agree across >=300 instances (4 families)" `Quick
      test_all_families_agree;
    Alcotest.test_case "small instances cross-checked vs brute force" `Quick
      test_small_instances_vs_brute_force;
    Alcotest.test_case "degenerate shapes" `Quick test_degenerate_shapes;
    Alcotest.test_case "guarantee levels reported per engine" `Quick
      test_engine_guarantees_reported;
    Alcotest.test_case "portfolio race over all six engines" `Quick
      test_portfolio_race_covers_all_engines;
  ]
