(* The telemetry substrate: counters must agree with the engines' own stats
   on a fixed-seed instance, the disabled path must record nothing, the
   histogram percentile math must be sane, and the JSON sink must round-trip
   through Obs.Json — including the CLI's `profile --stats=json` output. *)

module G = Bipartite.Graph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Seed 1 with these tight capacities makes the Karp–Sipser-style greedy
   init fall short, so Hopcroft–Karp performs real augmentations (2 on this
   instance) and the path-length histogram is non-empty. *)
let caps () = Array.make 8 5

let fixed_graph () =
  let rng = Randkit.Prng.create ~seed:1 in
  let edges = ref [] in
  for v = 0 to 39 do
    for u = 0 to 7 do
      if Randkit.Prng.float rng 1.0 < 0.3 then edges := (v, u) :: !edges
    done
  done;
  G.unit_weights ~n1:40 ~n2:8 ~edges:!edges

(* Counter handles interned here read the values the engines record. *)
let hk_phases = Obs.Metrics.counter "matching.hk.phases"
let hk_augmentations = Obs.Metrics.counter "matching.hk.augmentations"
let pr_relabels = Obs.Metrics.counter "matching.pr.relabels"
let dfs_scans = Obs.Metrics.counter "matching.dfs.scans"
let hk_path_len = Obs.Metrics.histogram "matching.hk.aug_path_len"

let test_disabled_records_nothing () =
  Obs.set_enabled false;
  Obs.reset ();
  let g = fixed_graph () in
  List.iter
    (fun engine -> ignore (Matching.solve ~engine ~capacities:(caps ()) g))
    Matching.all_engines;
  ignore (Obs.Span.timed "should-not-record" (fun () -> 1 + 1));
  check_int "hk phases untouched" 0 (Obs.Metrics.value hk_phases);
  check_int "pr relabels untouched" 0 (Obs.Metrics.value pr_relabels);
  check_int "dfs scans untouched" 0 (Obs.Metrics.value dfs_scans);
  check_int "histogram untouched" 0 (Obs.Metrics.count hk_path_len);
  check_int "span ring empty" 0 (List.length (Obs.Span.records ()));
  check_int "no spans recorded" 0 (Obs.Span.recorded ())

(* Obs counters and the engines' own Engine_common tallies are incremented at
   the same program points, so on any instance they must agree exactly. *)
let test_counters_match_engine_stats () =
  let g = fixed_graph () in
  Obs.with_recording (fun () ->
      let _, stats =
        Matching.solve_with_stats ~engine:Matching.Hopcroft_karp ~capacities:(caps ()) g
      in
      check "instance forces augmentations" (stats.Matching.augmentations > 0) true;
      check_int "hk phases" stats.Matching.phases (Obs.Metrics.value hk_phases);
      check_int "hk augmentations" stats.Matching.augmentations
        (Obs.Metrics.value hk_augmentations);
      check_int "one path length per augmentation" stats.Matching.augmentations
        (Obs.Metrics.count hk_path_len);
      check "augmenting paths have odd length"
        (Float.rem (Obs.Metrics.minimum hk_path_len) 2.0 = 1.0) true);
  (* with_recording restores the previous enabled state but keeps the data. *)
  check "data survives with_recording" (Obs.Metrics.value hk_phases > 0) true;
  check "recording switched back off" (Obs.is_enabled ()) false

let test_histogram_percentiles () =
  Obs.with_recording (fun () ->
      let h = Obs.Metrics.histogram "test.histogram" in
      List.iter (Obs.Metrics.observe h) [ 0.5; 2.0; 8.0; 32.0 ];
      check_int "count" 4 (Obs.Metrics.count h);
      Alcotest.(check (float 1e-9)) "sum" 42.5 (Obs.Metrics.sum h);
      Alcotest.(check (float 1e-9)) "min" 0.5 (Obs.Metrics.minimum h);
      Alcotest.(check (float 1e-9)) "max" 32.0 (Obs.Metrics.maximum h);
      let q p = Obs.Metrics.quantile h ~q:p in
      Alcotest.(check (float 1e-9)) "p0 clamps to min" 0.5 (q 0.0);
      Alcotest.(check (float 1e-9)) "p100 clamps to max" 32.0 (q 1.0);
      check "quantiles are monotone" (q 0.25 <= q 0.5 && q 0.5 <= q 0.9 && q 0.9 <= q 1.0) true;
      check "p50 within observed range" (q 0.5 >= 0.5 && q 0.5 <= 32.0) true;
      (* A single-observation histogram answers every quantile exactly. *)
      let one = Obs.Metrics.histogram "test.histogram.single" in
      Obs.Metrics.observe one 7.0;
      List.iter
        (fun p -> Alcotest.(check (float 1e-9)) "degenerate quantile" 7.0
            (Obs.Metrics.quantile one ~q:p))
        [ 0.0; 0.5; 0.99; 1.0 ])

let test_span_aggregates () =
  Obs.with_recording (fun () ->
      for _ = 1 to 3 do
        Obs.Span.timed "outer" (fun () -> Obs.Span.timed "inner" (fun () -> Sys.opaque_identity ()))
      done;
      check_int "six spans recorded" 6 (Obs.Span.recorded ());
      let records = Obs.Span.records () in
      check "inner spans nest at depth 1"
        (List.for_all (fun r -> r.Obs.Span.depth = 1)
           (List.filter (fun r -> r.Obs.Span.r_name = "inner") records))
        true;
      let aggs = Obs.Span.aggregates () in
      let find name = List.find (fun a -> a.Obs.Span.a_name = name) aggs in
      check_int "outer count" 3 (find "outer").Obs.Span.a_count;
      check_int "inner count" 3 (find "inner").Obs.Span.a_count;
      check "durations are non-negative"
        (List.for_all (fun r -> Obs.Span.duration_s r >= 0.0) records)
        true)

let parse_lines output =
  String.split_on_char '\n' output
  |> List.filter (fun l -> String.length l > 0 && l.[0] = '{')
  |> List.map Obs.Json.of_string

let member_str name json =
  match Obs.Json.member name json with Some j -> Obs.Json.to_str j | None -> None

let member_num name json =
  match Obs.Json.member name json with Some j -> Obs.Json.to_float j | None -> None

(* Counters bumped in-process must come back unchanged through render Json →
   of_string: the full machine-format round trip. *)
let test_json_sink_roundtrip () =
  Obs.with_recording (fun () ->
      let g = fixed_graph () in
      ignore (Matching.solve ~engine:Matching.Push_relabel g);
      ignore (Obs.Span.timed "roundtrip.span" (fun () -> ()));
      let rows = parse_lines (Obs.Sink.render ~label:"rt" Obs.Sink.Json) in
      check "sink emitted rows" (rows <> []) true;
      List.iter
        (fun row ->
          check "every row is labelled" (member_str "label" row = Some "rt") true;
          check "every row has a type"
            (match member_str "type" row with
            | Some ("counter" | "histogram" | "span") -> true
            | _ -> false)
            true)
        rows;
      let counter_value name =
        List.find_map
          (fun row ->
            if member_str "type" row = Some "counter" && member_str "name" row = Some name then
              member_num "value" row
            else None)
          rows
      in
      check "pr relabels round-trip"
        (counter_value "matching.pr.relabels"
        = Some (float_of_int (Obs.Metrics.value pr_relabels)))
        true;
      check "span aggregate present"
        (List.exists
           (fun row ->
             member_str "type" row = Some "span" && member_str "name" row = Some "roundtrip.span")
           rows)
        true)

let test_json_parser () =
  let roundtrip s = Obs.Json.to_string (Obs.Json.of_string s) in
  Alcotest.(check string) "object" {|{"a":1,"b":[true,null,"x"]}|}
    (roundtrip {| { "a" : 1 , "b" : [ true , null , "x" ] } |});
  Alcotest.(check string) "negative exponent" "0.001" (roundtrip "1e-3");
  check "escapes survive"
    (Obs.Json.of_string {|"a\"b\\c"|} = Obs.Json.Str {|a"b\c|})
    true;
  List.iter
    (fun bad ->
      check ("rejects " ^ bad)
        (match Obs.Json.of_string bad with exception Failure _ -> true | _ -> false)
        true)
    [ ""; "{"; "[1,]"; "{\"a\"}"; "tru"; "1 2" ]

(* NaN has no JSON literal: empty-histogram statistics must come out as
   [null] and still round-trip through Obs.Json; the CSV sink leaves the
   cell empty and the table prints "-". *)
let test_nan_sentinels () =
  Obs.with_recording (fun () ->
      ignore (Obs.Metrics.histogram "empty.histogram");
      let json_out = Obs.Sink.render Obs.Sink.Json in
      check "sink output contains no bare nan"
        (not (Test_cli.contains ~needle:"nan" json_out))
        true;
      let row =
        List.find
          (fun r -> member_str "name" r = Some "empty.histogram")
          (parse_lines json_out)
      in
      check "empty histogram min is null" (Obs.Json.member "min" row = Some Obs.Json.Null) true;
      check "empty histogram mean is null" (Obs.Json.member "mean" row = Some Obs.Json.Null) true;
      (* The full line re-parses and re-renders identically: null is stable. *)
      let reprinted = Obs.Json.to_string (Obs.Json.of_string (Obs.Json.to_string row)) in
      Alcotest.(check string) "null round-trips" (Obs.Json.to_string row) reprinted;
      let csv = Obs.Sink.render Obs.Sink.Csv in
      check "CSV leaves nan cells empty"
        (List.exists
           (fun line ->
             (* count=0, sum=0, then empty min/max/mean cells *)
             Test_cli.contains ~needle:"empty.histogram" line
             && Test_cli.contains ~needle:",0,0,,," line
             && not (Test_cli.contains ~needle:"nan" line))
           (String.split_on_char '\n' csv))
        true;
      let table = Obs.Sink.render Obs.Sink.Table in
      check "table prints a dash" (Test_cli.contains ~needle:"min=-" table) true)

(* RFC 4180: a hostile --stats label full of quotes and separators must be
   quoted, not splice extra CSV columns. *)
let test_csv_hostile_label () =
  Obs.with_recording (fun () ->
      Obs.Metrics.incr (Obs.Metrics.counter "csv.quoting.counter");
      let label = {|evil "label", with, commas|} in
      let csv = Obs.Sink.render ~label Obs.Sink.Csv in
      let lines = String.split_on_char '\n' csv |> List.filter (fun l -> l <> "") in
      let header = List.hd lines in
      let cols = List.length (String.split_on_char ',' header) in
      check "label is RFC 4180 quoted"
        (Test_cli.contains ~needle:{|"evil ""label"", with, commas"|} csv)
        true;
      (* Counting commas outside quotes: every data row splits into exactly
         the header's column count. *)
      let fields line =
        let n = ref 1 and in_quotes = ref false in
        String.iter
          (fun c ->
            if c = '"' then in_quotes := not !in_quotes
            else if c = ',' && not !in_quotes then incr n)
          line;
        !n
      in
      List.iter
        (fun line -> check_int "row width matches header" cols (fields line))
        (List.tl lines))

let test_events_basics () =
  Obs.with_recording (fun () ->
      Obs.Events.emit "test.event"
        [ Obs.Events.str "who" "obs-test"; Obs.Events.int "n" 3; Obs.Events.bool "ok" true ];
      Obs.Events.emit ~level:Obs.Events.Warn "test.warning" [ Obs.Events.num "x" 1.5 ];
      check_int "two events recorded" 2 (Obs.Events.recorded ());
      let records = Obs.Events.records () in
      let first = List.hd records in
      check "fields survive"
        (first.Obs.Events.e_fields
        = [ ("who", Obs.Json.Str "obs-test"); ("n", Obs.Json.Num 3.0); ("ok", Obs.Json.Bool true) ])
        true;
      check "dom is the recording domain" (first.Obs.Events.e_dom = (Domain.self () :> int)) true;
      let json = Obs.Events.to_json first in
      check "to_json carries the name" (member_str "event" json = Some "test.event") true;
      check "to_json carries the fields" (member_str "who" json = Some "obs-test") true;
      (* Level gating at emit time. *)
      Obs.Events.set_level Obs.Events.Warn;
      Fun.protect
        ~finally:(fun () -> Obs.Events.set_level Obs.Events.Debug)
        (fun () ->
          Obs.Events.emit ~level:Obs.Events.Info "test.filtered" [];
          check_int "below-level events are dropped" 2 (Obs.Events.recorded ())));
  (* Disabled: emit must record nothing. *)
  Obs.set_enabled false;
  Obs.reset ();
  Obs.Events.emit "test.disabled" [];
  check_int "disabled events record nothing" 0 (Obs.Events.recorded ())

(* End-to-end: the CLI's profile subcommand with --stats=json must emit
   machine-readable telemetry for every profiled algorithm. *)
let test_cli_profile_stats_json () =
  Test_cli.with_temp (fun path ->
      ignore
        (Test_cli.expect_ok
           (Test_cli.run_capture
              [ "gen"; "--tasks"; "40"; "--procs"; "8"; "--groups"; "2"; "--seed"; "7"; "-o"; path ]));
      let out = Test_cli.expect_ok (Test_cli.run_capture [ "profile"; "--stats=json"; path ]) in
      let rows = parse_lines out in
      check "profile emitted JSON rows" (List.length rows > 10) true;
      let labels =
        List.filter_map (fun row -> member_str "label" row) rows
        |> List.sort_uniq compare
      in
      check "per-algorithm labels present"
        (List.mem "SGH" labels && List.mem "EVG" labels)
        true;
      check "hk phase counter appears"
        (List.exists (fun row -> member_str "name" row = Some "matching.hk.phases") rows
        || List.exists (fun row -> member_str "name" row = Some "semimatch.greedy.candidates") rows)
        true)

(* Quantile edge cases: empty, domain errors, clamping, and the sharding
   invariant — observations split across domains merge to exactly the
   buckets (hence quantiles) a single shard would hold. *)
let test_quantile_edge_cases () =
  Obs.with_recording (fun () ->
      let empty = Obs.Metrics.histogram "edge.empty" in
      check "empty histogram quantile is nan"
        (Float.is_nan (Obs.Metrics.quantile empty ~q:0.5))
        true;
      let h = Obs.Metrics.histogram "edge.clamp" in
      List.iter (Obs.Metrics.observe h) [ 3.0; 12.0 ];
      Alcotest.(check (float 1e-9)) "q=0 clamps to min" 3.0 (Obs.Metrics.quantile h ~q:0.0);
      Alcotest.(check (float 1e-9)) "q=1 clamps to max" 12.0 (Obs.Metrics.quantile h ~q:1.0);
      List.iter
        (fun q ->
          check
            (Printf.sprintf "q=%g is rejected" q)
            (match Obs.Metrics.quantile h ~q with
            | exception Invalid_argument _ -> true
            | _ -> false)
            true)
        [ -0.01; 1.01; Float.nan ];
      (* Same data, two shards: half observed on a spawned domain.  Bucket
         merging is exact addition, so every quantile matches the
         single-shard reference bit-for-bit. *)
      let data = [ 1.0; 3.0; 9.0; 27.0; 81.0; 243.0 ] in
      let reference = Obs.Metrics.histogram "edge.single_shard" in
      List.iter (Obs.Metrics.observe reference) data;
      let sharded = Obs.Metrics.histogram "edge.two_shards" in
      let first, second = (List.filteri (fun i _ -> i < 3) data, List.filteri (fun i _ -> i >= 3) data) in
      List.iter (Obs.Metrics.observe sharded) first;
      Domain.join
        (Domain.spawn (fun () -> List.iter (Obs.Metrics.observe sharded) second));
      check_int "merged count" (Obs.Metrics.count reference) (Obs.Metrics.count sharded);
      List.iter
        (fun q ->
          Alcotest.(check (float 0.0))
            (Printf.sprintf "merged quantile q=%g" q)
            (Obs.Metrics.quantile reference ~q)
            (Obs.Metrics.quantile sharded ~q))
        [ 0.0; 0.25; 0.5; 0.75; 0.95; 1.0 ])

(* When the event ring laps itself the oldest records vanish from any later
   render; the [events.dropped] counter makes that truncation visible. *)
let test_events_dropped_counter () =
  Obs.with_recording (fun () ->
      Obs.reset ();
      Obs.Events.set_capacity 4;
      Fun.protect
        ~finally:(fun () -> Obs.Events.set_capacity 8192)
        (fun () ->
          let dropped = Obs.Metrics.counter "events.dropped" in
          let before = Obs.Metrics.value dropped in
          List.iter
            (fun i -> Obs.Events.emit "drop.test" [ Obs.Events.int "i" i ])
            (List.init 10 Fun.id);
          Alcotest.(check int) "overwrites counted" 6 (Obs.Metrics.value dropped - before);
          Alcotest.(check int) "ring keeps the newest capacity-many" 4
            (List.length (Obs.Events.records ()));
          check "exposition carries the drop counter" true
            (Test_cli.contains ~needle:"semimatch_events_dropped_total" (Obs.Prom.render ()))))

(* The sink layout is a machine contract: golden-pin the CSV header and the
   histogram JSON keys, p95 included. *)
let test_sink_layout_p95 () =
  Obs.with_recording (fun () ->
      let h = Obs.Metrics.histogram "layout.h" in
      List.iter (Obs.Metrics.observe h) (List.init 100 (fun i -> float_of_int (i + 1)));
      let csv = Obs.Sink.render Obs.Sink.Csv in
      Alcotest.(check string) "CSV header"
        "type,name,value,count,sum,min,max,mean,p50,p90,p95,p99,total_s,mean_s"
        (List.hd (String.split_on_char '\n' csv));
      let row =
        List.find
          (fun r -> member_str "name" r = Some "layout.h")
          (parse_lines (Obs.Sink.render Obs.Sink.Json))
      in
      Alcotest.(check (list string)) "histogram JSON keys"
        [ "type"; "name"; "count"; "sum"; "min"; "max"; "mean"; "p50"; "p90"; "p95"; "p99" ]
        (match row with Obs.Json.Obj fields -> List.map fst fields | _ -> []);
      (* p95 is the real 0.95-quantile, between p90 and p99. *)
      let p90 = Option.get (member_num "p90" row)
      and p95 = Option.get (member_num "p95" row)
      and p99 = Option.get (member_num "p99" row) in
      Alcotest.(check (float 0.0)) "p95 matches quantile" (Obs.Metrics.quantile h ~q:0.95) p95;
      check "p90 <= p95 <= p99" (p90 <= p95 && p95 <= p99) true;
      check "table prints p95" (Test_cli.contains ~needle:"p95=" (Obs.Sink.render Obs.Sink.Table))
        true)

(* Prometheus exposition: a render of live metrics passes the lint, and the
   lint actually rejects the malformations it exists to catch. *)
let test_prom_render_and_lint () =
  Obs.with_recording (fun () ->
      Obs.reset ();
      let c = Obs.Metrics.counter "prom.test.counter" in
      Obs.Metrics.add c 42;
      let h = Obs.Metrics.histogram "prom.test.hist_us" in
      List.iter (Obs.Metrics.observe h) [ 0.5; 3.0; 3.0; 700.0 ];
      ignore (Obs.Span.timed "prom.test.span" (fun () -> Sys.opaque_identity ()));
      let text =
        Obs.Prom.render
          ~gauges:
            [
              ("prom.test.gauge", [], 1.5);
              ("prom.test.labeled", [ ("session", {|we"ird|}) ], 2.0);
            ]
          ()
      in
      (match Obs.Prom.lint text with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "live render fails lint: %s" msg);
      let has needle = Test_cli.contains ~needle text in
      check "counter HELP line" true (has "# HELP semimatch_prom_test_counter_total");
      Obs.Prom.describe "prom.test.counter" "A counter described for the test.";
      check "described HELP text" true
        (Test_cli.contains ~needle:"A counter described for the test." (Obs.Prom.render ()));
      check "counter family" true (has "# TYPE semimatch_prom_test_counter_total counter");
      check "counter value" true (has "semimatch_prom_test_counter_total 42");
      check "histogram family" true (has "# TYPE semimatch_prom_test_hist_us histogram");
      check "+Inf bucket equals count" true (has {|semimatch_prom_test_hist_us_bucket{le="+Inf"} 4|});
      check "histogram count" true (has "semimatch_prom_test_hist_us_count 4");
      check "gauge" true (has "semimatch_prom_test_gauge 1.5");
      check "label value escaped" true (has {|session="we\"ird"|});
      check "span seconds total" true (has "semimatch_span_prom_test_span_seconds_total"));
  let expect_bad name text =
    match Obs.Prom.lint text with
    | Ok () -> Alcotest.failf "lint accepted %s" name
    | Error _ -> ()
  in
  expect_bad "duplicate TYPE"
    "# HELP foo a\n# TYPE foo counter\nfoo 1\n# HELP foo a\n# TYPE foo counter\nfoo 2\n";
  expect_bad "undeclared family" "# HELP foo a\n# TYPE foo counter\nfoo 1\nbar 2\n";
  expect_bad "TYPE without HELP" "# TYPE foo counter\nfoo 1\n";
  expect_bad "duplicate HELP" "# HELP foo a\n# HELP foo b\n# TYPE foo counter\nfoo 1\n";
  expect_bad "non-monotone le buckets"
    "# HELP h a\n# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n";
  expect_bad "decreasing cumulative counts"
    "# HELP h a\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n";
  expect_bad "+Inf disagrees with count"
    "# HELP h a\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n";
  expect_bad "non-numeric value" "# HELP foo a\n# TYPE foo counter\nfoo one\n";
  match Obs.Prom.lint "# HELP ok a counter\n# TYPE ok counter\nok 1\nok{label=\"x\"} 2\n" with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "labelled samples under one family must pass: %s" msg

let suite =
  [
    Alcotest.test_case "disabled probes record nothing" `Quick test_disabled_records_nothing;
    Alcotest.test_case "counters match engine stats" `Quick test_counters_match_engine_stats;
    Alcotest.test_case "histogram percentile math" `Quick test_histogram_percentiles;
    Alcotest.test_case "span aggregates and nesting" `Quick test_span_aggregates;
    Alcotest.test_case "JSON sink round-trips" `Quick test_json_sink_roundtrip;
    Alcotest.test_case "JSON parser accepts/rejects" `Quick test_json_parser;
    Alcotest.test_case "NaN sentinels per sink format" `Quick test_nan_sentinels;
    Alcotest.test_case "CSV quotes hostile labels" `Quick test_csv_hostile_label;
    Alcotest.test_case "structured event log basics" `Quick test_events_basics;
    Alcotest.test_case "event ring drop counter" `Quick test_events_dropped_counter;
    Alcotest.test_case "quantile edge cases and shard merging" `Quick test_quantile_edge_cases;
    Alcotest.test_case "sink layout pins p95 columns" `Quick test_sink_layout_p95;
    Alcotest.test_case "Prometheus render and lint" `Quick test_prom_render_and_lint;
    Alcotest.test_case "CLI profile --stats=json" `Quick test_cli_profile_stats_json;
  ]
