(* Property-based tests over random instances, on a small self-contained
   generator/shrinker substrate seeded through Randkit.Prng (reproducible
   across runs and machines, unlike Stdlib.Random).

   A case is the edge list a hypergraph is built from; properties get the
   built graph.  On failure the case is greedily shrunk — drop a spare
   configuration, drop a processor from a configuration, simplify a weight —
   and the minimal counterexample is printed in the Hyper.Io text format, so
   it can be saved and replayed with `semimatch_cli solve`. *)

module H = Hyper.Graph
module Gh = Semimatch.Greedy_hyper
module Gb = Semimatch.Greedy_bipartite
module Prng = Randkit.Prng

type case = { n1 : int; n2 : int; edges : (int * int array * float) list }

let graph_of c = H.create ~n1:c.n1 ~n2:c.n2 ~hyperedges:c.edges

let weight_palette = [| 1.0; 0.5; 2.0; 3.0; 1.25 |]

(* Every task gets 1..3 configurations of 1..3 distinct processors each, so
   instances are always feasible (no isolated task). *)
let gen_case rng =
  let n1 = 1 + Prng.int rng 10 and n2 = 1 + Prng.int rng 6 in
  let edges = ref [] in
  for v = n1 - 1 downto 0 do
    let d = 1 + Prng.int rng 3 in
    for _ = 1 to d do
      let k = 1 + Prng.int rng (min 3 n2) in
      let procs = Prng.sample_without_replacement rng ~k ~n:n2 in
      let w = weight_palette.(Prng.int rng (Array.length weight_palette)) in
      edges := (v, procs, w) :: !edges
    done
  done;
  { n1; n2; edges = !edges }

(* Shrink candidates, most aggressive first.  All moves keep every task
   covered, so candidates never leave the valid-instance space. *)
let shrink_candidates c =
  let degree v = List.length (List.filter (fun (t, _, _) -> t = v) c.edges) in
  let nth_removed i = List.filteri (fun j _ -> j <> i) c.edges in
  let drop_edges =
    List.filteri (fun _ (t, _, _) -> degree t > 1) c.edges
    |> List.map (fun e ->
           let i = ref (-1) in
           List.iteri (fun j e' -> if !i < 0 && e' == e then i := j) c.edges;
           { c with edges = nth_removed !i })
  in
  let drop_procs =
    List.concat
      (List.mapi
         (fun i (t, procs, w) ->
           if Array.length procs <= 1 then []
           else
             List.init (Array.length procs) (fun k ->
                 let smaller = Array.of_list (List.filteri (fun j _ -> j <> k) (Array.to_list procs)) in
                 {
                   c with
                   edges = List.mapi (fun j e -> if j = i then (t, smaller, w) else e) c.edges;
                 }))
         c.edges)
  in
  let unit_weights =
    List.mapi
      (fun i (t, procs, w) ->
        if w = 1.0 then None
        else Some { c with edges = List.mapi (fun j e -> if j = i then (t, procs, 1.0) else e) c.edges })
      c.edges
    |> List.filter_map Fun.id
  in
  drop_edges @ drop_procs @ unit_weights

let rec shrink ~budget prop c =
  if budget = 0 then c
  else
    match List.find_opt (fun c' -> Result.is_error (prop c')) (shrink_candidates c) with
    | Some smaller -> shrink ~budget:(budget - 1) prop smaller
    | None -> c

(* [run_prop] generates [count] cases from [seed]; the first failure is
   shrunk and reported with its Io rendering and the message the property
   produced on the shrunk case. *)
let run_prop ~seed ~count prop =
  let rng = Prng.create ~seed in
  for i = 1 to count do
    let case = gen_case (Prng.split rng) in
    match prop case with
    | Ok () -> ()
    | Error _ ->
        let small = shrink ~budget:500 prop case in
        let msg = match prop small with Error m -> m | Ok () -> "(unshrinkable)" in
        Alcotest.failf "case %d/%d failed: %s\nshrunk counterexample (Hyper.Io format):\n%s" i
          count msg
          (Hyper.Io.to_string (graph_of small))
  done

let recomputed_makespan h (a : Semimatch.Hyp_assignment.t) =
  let loads = Array.make h.H.n2 0.0 in
  Array.iter
    (fun e -> H.iter_h_procs h e (fun u -> loads.(u) <- loads.(u) +. H.h_weight h e))
    a.Semimatch.Hyp_assignment.choice;
  Array.fold_left Float.max 0.0 loads

let close a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let feasible_with_consistent_makespan ~name run c =
  let h = graph_of c in
  let a = run h in
  if not (Semimatch.Hyp_assignment.is_valid h a) then
    Error (Printf.sprintf "%s returned an invalid assignment" name)
  else begin
    let reported = Semimatch.Hyp_assignment.makespan h a in
    let actual = recomputed_makespan h a in
    if not (close reported actual) then
      Error
        (Printf.sprintf "%s reports makespan %.17g but its loads give %.17g" name reported actual)
    else Ok ()
  end

let test_greedy_feasible () =
  List.iter
    (fun algo ->
      run_prop ~seed:(Hashtbl.hash (Gh.short_name algo)) ~count:100
        (feasible_with_consistent_makespan ~name:(Gh.name algo) (Gh.run algo)))
    Gh.all

let test_local_search_feasible () =
  run_prop ~seed:11 ~count:100 (fun c ->
      let h = graph_of c in
      let start = Gh.run Gh.Sorted_greedy_hyp h in
      let m0 = Semimatch.Hyp_assignment.makespan h start in
      match
        feasible_with_consistent_makespan ~name:"local search"
          (fun h -> fst (Semimatch.Local_search.refine h start))
          c
      with
      | Error _ as e -> e
      | Ok () ->
          let refined, _ = Semimatch.Local_search.refine h start in
          let m = Semimatch.Hyp_assignment.makespan h refined in
          if m > m0 +. 1e-9 then
            Error (Printf.sprintf "local search worsened the makespan: %g -> %g" m0 m)
          else Ok ())

let test_annealing_feasible () =
  run_prop ~seed:12 ~count:60 (fun c ->
      let h = graph_of c in
      let a, reported = Semimatch.Annealing.solve (Prng.create ~seed:5) h in
      if not (Semimatch.Hyp_assignment.is_valid h a) then
        Error "annealing returned an invalid assignment"
      else if not (close reported (recomputed_makespan h a)) then
        Error
          (Printf.sprintf "annealing reports %.17g but its loads give %.17g" reported
             (recomputed_makespan h a))
      else Ok ())

let test_portfolio_feasible () =
  run_prop ~seed:13 ~count:40 (fun c ->
      let h = graph_of c in
      let r = Semimatch.Portfolio.solve h in
      if not (Semimatch.Hyp_assignment.is_valid h r.Semimatch.Portfolio.assignment) then
        Error "portfolio returned an invalid assignment"
      else if
        not
          (close r.Semimatch.Portfolio.best_makespan
             (recomputed_makespan h r.Semimatch.Portfolio.assignment))
      then Error "portfolio best_makespan disagrees with its assignment"
      else if
        r.Semimatch.Portfolio.best_makespan < r.Semimatch.Portfolio.lower_bound -. 1e-9
      then Error "portfolio beat the lower bound: impossible"
      else Ok ())

(* The bipartite heuristics, via the degenerate SINGLEPROC embedding:
   singleton unit-weight configurations are plain bipartite edges. *)
let bip_case rng =
  let c = gen_case rng in
  { c with edges = List.map (fun (t, procs, _) -> (t, [| procs.(0) |], 1.0)) c.edges }

let bipartite_of c =
  Bipartite.Graph.unit_weights ~n1:c.n1 ~n2:c.n2
    ~edges:(List.map (fun (t, procs, _) -> (t, procs.(0))) c.edges)

let test_bipartite_greedy_feasible () =
  let prop algo c =
    let g = bipartite_of c in
    let a = Gb.run algo g in
    if not (Semimatch.Bip_assignment.is_valid g a) then
      Error (Printf.sprintf "%s returned an invalid assignment" (Gb.name algo))
    else begin
      let reported = Semimatch.Bip_assignment.makespan g a in
      let loads = Semimatch.Bip_assignment.loads g a in
      let actual = Array.fold_left Float.max 0.0 loads in
      if not (close reported actual) then
        Error (Printf.sprintf "%s reports %.17g, loads give %.17g" (Gb.name algo) reported actual)
      else Ok ()
    end
  in
  List.iter
    (fun algo ->
      let rng = Prng.create ~seed:(17 + Hashtbl.hash (Gb.name algo)) in
      for i = 1 to 100 do
        let case = bip_case (Prng.split rng) in
        match prop algo case with
        | Ok () -> ()
        | Error _ ->
            let small = shrink ~budget:500 (prop algo) case in
            let msg = match prop algo small with Error m -> m | Ok () -> "(unshrinkable)" in
            Alcotest.failf "bipartite case %d failed: %s\nshrunk (Hyper.Io embedding):\n%s" i msg
              (Hyper.Io.to_string (graph_of small))
      done)
    Gb.all

(* Flow-cost characterization of optimal semi-matchings: a schedule that
   admits no cost-reducing path minimizes Sigma l(l+1)/2 over *all* feasible
   assignments (Harvey et al.).  The direct exact engines claim exactly
   that, so on brute-forceable instances their total flow time must equal
   the enumerated minimum.  Failures shrink to a minimal counterexample and
   print it in the Hyper.Io format like every other property here. *)
let enum_min_flow_cost g =
  let module B = Bipartite.Graph in
  let loads = Array.make g.B.n2 0 in
  let best = ref max_int in
  let rec go v =
    if v = g.B.n1 then begin
      let c = Array.fold_left (fun acc l -> acc + (l * (l + 1) / 2)) 0 loads in
      if c < !best then best := c
    end
    else
      B.iter_neighbors g v (fun u _w ->
          loads.(u) <- loads.(u) + 1;
          go (v + 1);
          loads.(u) <- loads.(u) - 1)
  in
  go 0;
  !best

let test_optimal_flow_cost () =
  let prop c =
    let g = bipartite_of c in
    let space =
      List.fold_left
        (fun acc d -> if acc > 200_000 then acc else acc * max 1 d)
        1
        (List.init c.n1 (fun v -> Bipartite.Graph.degree g v))
    in
    if space > 200_000 then Ok () (* too big to enumerate; skip *)
    else begin
      let optimum = enum_min_flow_cost g in
      let check name flow =
        if flow <> optimum then
          Error (Printf.sprintf "%s flow cost %d, enumerated optimum %d" name flow optimum)
        else Ok ()
      in
      match check "gen-hk" (Semimatch.Gen_hk.solve g).Semimatch.Gen_hk.total_flow_time with
      | Error _ as e -> e
      | Ok () -> (
          match
            check "dnc"
              (Semimatch.Divide_conquer.solve g).Semimatch.Divide_conquer.total_flow_time
          with
          | Error _ as e -> e
          | Ok () -> check "harvey" (Semimatch.Harvey.solve g).Semimatch.Harvey.total_flow_time)
    end
  in
  let rng = Prng.create ~seed:31 in
  for i = 1 to 120 do
    let case = bip_case (Prng.split rng) in
    match prop case with
    | Ok () -> ()
    | Error _ ->
        let small = shrink ~budget:500 prop case in
        let msg = match prop small with Error m -> m | Ok () -> "(unshrinkable)" in
        Alcotest.failf "flow-cost case %d failed: %s\nshrunk (Hyper.Io embedding):\n%s" i msg
          (Hyper.Io.to_string (graph_of small))
  done

let test_shrinker_minimizes () =
  (* The shrinker itself: on an always-failing property it must reach a
     1-task, 1-configuration, 1-processor, unit-weight fixpoint. *)
  let rng = Prng.create ~seed:99 in
  let c = gen_case rng in
  let small = shrink ~budget:10_000 (fun _ -> Error "always") c in
  List.iter
    (fun (_, procs, w) ->
      Alcotest.(check int) "singleton configurations" 1 (Array.length procs);
      Alcotest.(check (float 0.0)) "unit weights" 1.0 w)
    small.edges;
  Alcotest.(check int) "one configuration per task" small.n1 (List.length small.edges)

let suite =
  [
    Alcotest.test_case "greedy heuristics: feasible, makespan consistent" `Quick
      test_greedy_feasible;
    Alcotest.test_case "local search: feasible, never worse" `Quick test_local_search_feasible;
    Alcotest.test_case "annealing: feasible, makespan consistent" `Quick test_annealing_feasible;
    Alcotest.test_case "portfolio: feasible, above LB" `Quick test_portfolio_feasible;
    Alcotest.test_case "bipartite greedies: feasible, makespan consistent" `Quick
      test_bipartite_greedy_feasible;
    Alcotest.test_case "direct exact engines minimize total flow cost" `Quick
      test_optimal_flow_cost;
    Alcotest.test_case "shrinker reaches the minimal instance" `Quick test_shrinker_minimizes;
  ]
