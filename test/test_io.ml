module Io = Hyper.Io
module H = Hyper.Graph

let check = Alcotest.(check bool)

let sample () =
  H.create ~n1:3 ~n2:4
    ~hyperedges:
      [
        (0, [| 0 |], 2.5);
        (0, [| 1; 2 |], 1.0);
        (1, [| 3 |], 4.0);
        (2, [| 0; 1; 2; 3 |], 0.5);
      ]

let equal_hypergraphs a b =
  a.H.n1 = b.H.n1 && a.H.n2 = b.H.n2 && a.H.task_off = b.H.task_off && a.H.h_off = b.H.h_off
  && a.H.h_adj = b.H.h_adj && a.H.w = b.H.w

let test_roundtrip () =
  let h = sample () in
  let h' = Io.of_string (Io.to_string h) in
  check "roundtrip identical" true (equal_hypergraphs h h')

let test_file_roundtrip () =
  let h = sample () in
  let path = Filename.temp_file "semimatch" ".hg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.save path h;
      check "file roundtrip" true (equal_hypergraphs h (Io.load path)))

let test_comments_and_blanks () =
  let text = "# a comment\n\nhypergraph 1 2\n# another\n  h 0 1.5 0 1  \n" in
  let h = Io.of_string text in
  Alcotest.(check int) "one hyperedge" 1 (H.num_hyperedges h);
  Alcotest.(check (float 1e-9)) "weight parsed" 1.5 (H.h_weight h 0)

let expect_failure text fragment =
  match Io.of_string text with
  | exception Failure msg ->
      let contains =
        let nl = String.length fragment and hl = String.length msg in
        let rec scan i = i + nl <= hl && (String.sub msg i nl = fragment || scan (i + 1)) in
        scan 0
      in
      check ("error mentions " ^ fragment) true contains
  | _ -> Alcotest.fail "expected parse failure"

let test_parse_errors () =
  expect_failure "h 0 1 0\n" "before header";
  expect_failure "hypergraph 1\n" "expected: hypergraph";
  expect_failure "hypergraph 1 1\nbogus\n" "unrecognized";
  expect_failure "hypergraph 1 1\nh 0 x 0\n" "expected: h";
  expect_failure "hypergraph 1 1\nh 0 1 zero\n" "bad processor";
  expect_failure "" "missing header";
  expect_failure "hypergraph 1 1\nhypergraph 1 1\n" "duplicate header"

let test_semantic_errors_propagate () =
  match Io.of_string "hypergraph 1 1\nh 0 1 5\n" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected range error from Graph.create"

let test_generated_roundtrip () =
  let rng = Randkit.Prng.create ~seed:99 in
  let h =
    Hyper.Generate.generate rng ~family:Hyper.Generate.Fewg_manyg ~n:200 ~p:32 ~dv:3 ~dh:5 ~g:4
      ~weights:Hyper.Weights.Related
  in
  check "generated instance roundtrips" true (equal_hypergraphs h (Io.of_string (Io.to_string h)))

let parser_total_prop =
  QCheck.Test.make ~name:"parser is total: Failure/Invalid_argument or a valid graph" ~count:500
    QCheck.(string_gen_of_size (QCheck.Gen.int_bound 200) QCheck.Gen.printable)
    (fun text ->
      match Io.of_string text with
      | h -> H.num_hyperedges h >= 0
      | exception Failure _ -> true
      | exception Invalid_argument _ -> true)

let parser_structured_fuzz_prop =
  (* Fuzz with near-miss inputs built from the grammar's own tokens. *)
  QCheck.Test.make ~name:"parser survives token-soup inputs" ~count:500
    QCheck.(list_of_size (QCheck.Gen.int_bound 30)
              (oneofl [ "hypergraph"; "h"; "#x"; "0"; "1"; "2"; "-1"; "1.5"; "nan"; " "; "\n"; "z" ]))
    (fun tokens ->
      let text = String.concat " " tokens in
      match Io.of_string text with
      | h -> H.num_hyperedges h >= 0
      | exception Failure _ -> true
      | exception Invalid_argument _ -> true)

(* The only acceptable parser outcomes on arbitrary bytes: a valid graph, a
   line-numbered [Failure], or [Invalid_argument] from semantic validation.
   Anything else (Not_found, array bounds, Out_of_memory from a hostile
   header) is a parser hole. *)
let total_on text =
  match Io.of_string text with
  | h -> H.num_hyperedges h >= 0
  | exception Failure msg ->
      String.length msg >= 9 && String.sub msg 0 9 = "Hyper.Io:"
  | exception Invalid_argument _ -> true

let parser_hostile_bytes_prop =
  (* Unrestricted byte strings: NUL bytes, control characters, invalid
     UTF-8 — the parser must stay total over the full byte range. *)
  QCheck.Test.make ~name:"parser survives arbitrary byte strings" ~count:1000
    QCheck.(string_gen_of_size (QCheck.Gen.int_bound 120) (QCheck.Gen.int_range 0 255 |> QCheck.Gen.map Char.chr))
    total_on

let parser_truncation_prop =
  (* Every prefix of a valid serialization must parse or fail cleanly. *)
  QCheck.Test.make ~name:"parser survives truncated serializations" ~count:200
    QCheck.(int_bound 10_000)
    (fun cut ->
      let text = Io.to_string (sample ()) in
      total_on (String.sub text 0 (min cut (String.length text))))

let parser_mutation_prop =
  (* Single-byte corruptions of a valid serialization. *)
  QCheck.Test.make ~name:"parser survives mutated serializations" ~count:500
    QCheck.(pair (int_bound 10_000) (int_bound 255))
    (fun (pos, byte) ->
      let text = Bytes.of_string (Io.to_string (sample ())) in
      Bytes.set text (pos mod Bytes.length text) (Char.chr byte);
      total_on (Bytes.to_string text))

let test_hostile_header_sizes () =
  (* A ~20-byte header must not be able to request terabytes of arrays. *)
  expect_failure "hypergraph 999999999999 2\n" "out of range";
  expect_failure "hypergraph 2 999999999999\n" "out of range";
  expect_failure "hypergraph -1 2\n" "non-negative";
  expect_failure "hypergraph 1 -7\n" "non-negative"

let suite =
  [
    QCheck_alcotest.to_alcotest parser_total_prop;
    QCheck_alcotest.to_alcotest parser_structured_fuzz_prop;
    QCheck_alcotest.to_alcotest parser_hostile_bytes_prop;
    QCheck_alcotest.to_alcotest parser_truncation_prop;
    QCheck_alcotest.to_alcotest parser_mutation_prop;
    Alcotest.test_case "hostile header sizes" `Quick test_hostile_header_sizes;
    Alcotest.test_case "string roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "semantic errors propagate" `Quick test_semantic_errors_propagate;
    Alcotest.test_case "generated instance roundtrip" `Quick test_generated_roundtrip;
  ]
