module I = Experiments.Instances

let check = Alcotest.(check bool)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

(* ------------------------------------------------------------- Instances *)

let test_grid_matches_table1 () =
  let grid = I.paper_grid () in
  Alcotest.(check int) "24 instances" 24 (List.length grid);
  let names = List.map (fun s -> s.I.name) grid in
  (* Spot-check the paper's naming. *)
  List.iter
    (fun n -> check ("has " ^ n) true (List.mem n names))
    [ "FG-5-1-MP"; "MG-20-4-MP"; "HLF-80-16-MP"; "HLM-80-1-MP" ];
  (* n >= 5p everywhere, and the doubled parameters resolve correctly. *)
  List.iter
    (fun s ->
      check "n >= 5p" true (s.I.n >= 5 * s.I.p);
      check "dv default" true (s.I.dv = 5);
      check "dh default" true (s.I.dh = 10))
    grid;
  let fg = List.find (fun s -> s.I.name = "FG-20-4-MP") grid in
  Alcotest.(check int) "FG-20-4 n" 5120 fg.I.n;
  Alcotest.(check int) "FG-20-4 p" 1024 fg.I.p;
  Alcotest.(check int) "FG g" 32 fg.I.g;
  let mg = List.find (fun s -> s.I.name = "MG-20-4-MP") grid in
  Alcotest.(check int) "MG g" 128 mg.I.g

let test_scaled () =
  let fg = List.find (fun s -> s.I.name = "FG-80-16-MP") (I.paper_grid ()) in
  let s = I.scaled 16 fg in
  Alcotest.(check int) "scaled p" 256 s.I.p;
  Alcotest.(check int) "scaled n" 1280 s.I.n;
  check "renamed" true (contains ~needle:"/16" s.I.name);
  check "n >= 5p preserved" true (s.I.n >= 5 * s.I.p);
  let same = I.scaled 1 fg in
  check "scale 1 is identity" true (same = fg)

let test_generate_deterministic_per_seed () =
  let spec = I.scaled 16 (List.find (fun s -> s.I.name = "FG-5-1-MP") (I.paper_grid ())) in
  let a = I.generate_multiproc ~seed:3 ~weights:Hyper.Weights.Unit spec in
  let b = I.generate_multiproc ~seed:3 ~weights:Hyper.Weights.Unit spec in
  let c = I.generate_multiproc ~seed:4 ~weights:Hyper.Weights.Unit spec in
  check "same seed reproduces" true
    (a.Hyper.Graph.h_adj = b.Hyper.Graph.h_adj && a.Hyper.Graph.task_off = b.Hyper.Graph.task_off);
  check "different seed differs" true (a.Hyper.Graph.h_adj <> c.Hyper.Graph.h_adj)

let test_singleproc_grid () =
  let grid = I.paper_grid_singleproc ~d:5 () in
  Alcotest.(check int) "24 instances" 24 (List.length grid);
  List.iter (fun s -> check "d propagated" true (s.I.sp_d = 5)) grid;
  let g = I.generate_singleproc ~seed:0 (List.hd grid) in
  check "feasible" false (Bipartite.Graph.has_isolated_task g)

(* ---------------------------------------------------------------- Tables *)

let test_table_render () =
  let s =
    Experiments.Tables.render ~header:[ "a"; "b" ]
      ~rows:[ [ "x"; "1" ]; [ "yy"; "22" ] ]
      ~footer:[ [ "avg"; "11" ] ] ()
  in
  check "header" true (contains ~needle:"a" s);
  check "footer" true (contains ~needle:"avg" s);
  match Experiments.Tables.render ~header:[ "a" ] ~rows:[ [ "x"; "y" ] ] () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "arity mismatch not caught"

let test_csv () =
  let s = Experiments.Tables.csv ~header:[ "a"; "b" ] ~rows:[ [ "x,1"; "he\"llo" ] ] in
  check "quoted comma" true (contains ~needle:"\"x,1\"" s);
  check "escaped quote" true (contains ~needle:"\"he\"\"llo\"" s)

(* ---------------------------------------------------------------- Runner *)

let tiny_spec =
  { I.name = "TEST-MP"; family = Hyper.Generate.Fewg_manyg; n = 160; p = 32; dv = 3; dh = 4; g = 4 }

let test_runner_row () =
  let row = Experiments.Runner.run_row ~seeds:3 ~weights:Hyper.Weights.Unit tiny_spec in
  Alcotest.(check int) "four algorithms" 4 (List.length row.Experiments.Runner.results);
  check "positive LB" true (row.Experiments.Runner.lb > 0.0);
  List.iter
    (fun r ->
      check "ratio >= 1 wrt LB is not guaranteed, but >= 0.9 sanity" true
        (r.Experiments.Runner.ratio >= 0.9);
      check "time recorded" true (r.Experiments.Runner.time_s >= 0.0))
    row.Experiments.Runner.results

let test_runner_render () =
  let row = Experiments.Runner.run_row ~seeds:2 ~weights:Hyper.Weights.Related tiny_spec in
  let table1 = Experiments.Runner.render_table1 [ row ] in
  check "table1 mentions instance" true (contains ~needle:"TEST-MP" table1);
  let quality = Experiments.Runner.render_quality ~title:"T" [ row ] in
  check "weighted suffix" true (contains ~needle:"TEST-MP-W" quality);
  check "columns labelled" true (contains ~needle:"SGH" quality);
  check "averages" true (contains ~needle:"Average quality" quality);
  let csv = Experiments.Runner.to_csv [ row ] in
  check "csv has rows" true (List.length (String.split_on_char '\n' csv) >= 5)

let test_sp_runner_row () =
  let spec =
    { I.sp_name = "TEST-SP"; sp_family = `Fewg_manyg; sp_n = 160; sp_p = 32; sp_d = 4; sp_g = 4 }
  in
  let row = Experiments.Sp_runner.run_row ~seeds:3 spec in
  check "optimum positive" true (row.Experiments.Sp_runner.optimum >= 1.0);
  List.iter
    (fun r -> check "heuristic >= optimum" true (r.Experiments.Sp_runner.ratio >= 1.0 -. 1e-9))
    row.Experiments.Sp_runner.results;
  let rendered = Experiments.Sp_runner.render ~title:"SP" [ row ] in
  check "render mentions exact" true (contains ~needle:"M_opt" rendered);
  let csv = Experiments.Sp_runner.to_csv [ row ] in
  check "csv mentions instance" true (contains ~needle:"TEST-SP" csv)

let test_ratio_sanity_vs_brute_force () =
  (* On a tiny grid instance the LB-ratio reported by the runner must be
     consistent with direct measurement. *)
  let h = I.generate_multiproc ~seed:0 ~weights:Hyper.Weights.Unit tiny_spec in
  let lb = Semimatch.Lower_bound.multiproc h in
  let m = Semimatch.Greedy_hyper.makespan Semimatch.Greedy_hyper.Sorted_greedy_hyp h in
  check "direct ratio >= 1" true (m /. lb >= 1.0 -. 1e-9)

(* ------------------------------------------------------------ Extensions *)

let test_sweep () =
  let results =
    Experiments.Sweep.run ~seeds:1 ~n:80 ~p:16 ~dvs:[ 2 ] ~dhs:[ 2; 5 ] ~gs:[ 4 ]
      ~weights:Hyper.Weights.Related ()
  in
  Alcotest.(check int) "2 families x 1 g x 1 dv x 2 dh" 4 (List.length results);
  List.iter
    (fun r ->
      Alcotest.(check int) "four ratios" 4 (List.length r.Experiments.Sweep.ratios);
      Alcotest.(check int) "full ranking" 4 (List.length r.Experiments.Sweep.ranking);
      List.iter (fun (_, ratio) -> check "ratio >= 1" true (ratio >= 1.0 -. 1e-9)) r.Experiments.Sweep.ratios)
    results;
  let rendered = Experiments.Sweep.render results in
  check "summary present" true (contains ~needle:"best heuristic" rendered)

let test_weighted_sp () =
  let row = Experiments.Weighted_sp.run_row ~seeds:2 ~n:10 ~p:3 () in
  check "brute force ran" true (row.Experiments.Weighted_sp.opt <> None);
  (match row.Experiments.Weighted_sp.opt with
  | Some opt -> check "LB <= OPT" true (row.Experiments.Weighted_sp.lb <= opt +. 1e-9)
  | None -> ());
  Alcotest.(check int) "five heuristics" 5 (List.length row.Experiments.Weighted_sp.ratios);
  let rendered = Experiments.Weighted_sp.render [ row ] in
  check "mentions heaviest-first" true (contains ~needle:"heaviest-first" rendered)

let test_online () =
  let spec =
    { I.sp_name = "TEST-ONLINE"; sp_family = `Fewg_manyg; sp_n = 80; sp_p = 16; sp_d = 4; sp_g = 4 }
  in
  let row = Experiments.Online.run_row ~seeds:2 ~orders:5 spec in
  check "online never beats offline" true (row.Experiments.Online.best_ratio >= 1.0 -. 1e-9);
  check "worst >= mean >= best" true
    (row.Experiments.Online.worst_ratio >= row.Experiments.Online.mean_ratio -. 1e-9
    && row.Experiments.Online.mean_ratio >= row.Experiments.Online.best_ratio -. 1e-9);
  check "renders" true
    (contains ~needle:"TEST-ONLINE" (Experiments.Online.render [ row ]))

let test_hardness () =
  let rng = Randkit.Prng.create ~seed:5 in
  let inst = Experiments.Hardness.plant rng ~q:3 ~distractors:4 in
  Alcotest.(check int) "q preserved" 3 inst.Semimatch.Reduction.q;
  Alcotest.(check int) "triples = q + distractors" 7
    (List.length inst.Semimatch.Reduction.triples);
  (* Planted instances are yes-instances by construction. *)
  check "has a cover" true (Semimatch.Reduction.has_exact_cover inst);
  let h = Semimatch.Reduction.to_multiproc inst in
  let opt, _ = Semimatch.Brute_force.multiproc h in
  Alcotest.(check (float 1e-9)) "reduced optimum 1" 1.0 opt;
  let row = Experiments.Hardness.run_row ~trials:5 ~q:2 ~distractors:2 () in
  List.iter
    (fun (_, hits) -> check "hits within trials" true (hits >= 0 && hits <= 5))
    row.Experiments.Hardness.found_cover;
  List.iter
    (fun (_, m) -> check "mean makespan in [1,2+]" true (m >= 1.0 && m <= 3.0))
    row.Experiments.Hardness.mean_makespan;
  check "renders" true (contains ~needle:"hit%" (Experiments.Hardness.render [ row ]))

let test_bounds () =
  let row = Experiments.Bounds.run_row ~seeds:2 ~weights:Hyper.Weights.Unit tiny_spec in
  check "lb <= refined" true (row.Experiments.Bounds.lb <= row.Experiments.Bounds.lb_refined +. 1e-9);
  check "refined <= best heuristic" true
    (row.Experiments.Bounds.lb_refined <= row.Experiments.Bounds.best_heuristic +. 1e-9);
  (match row.Experiments.Bounds.optimum with
  | Some opt ->
      check "refined <= OPT <= best heuristic" true
        (row.Experiments.Bounds.lb_refined <= opt +. 1e-9
        && opt <= row.Experiments.Bounds.best_heuristic +. 1e-9)
  | None -> ());
  check "renders" true (contains ~needle:"heur/LB" (Experiments.Bounds.render [ row ]))

let test_robustness () =
  let row =
    Experiments.Robustness.run_row ~seeds:2 ~n:80 ~p:16 ~dv:2 ~dh:3
      ~family:(Experiments.Robustness.Powerlaw 1.0) ~weights:Hyper.Weights.Unit ()
  in
  Alcotest.(check int) "four ratios" 4 (List.length row.Experiments.Robustness.ratios);
  List.iter
    (fun (_, x) -> check "ratio >= 1" true (x >= 1.0 -. 1e-9))
    row.Experiments.Robustness.ratios;
  check "renders" true
    (contains ~needle:"zipf" (Experiments.Robustness.render [ row ]))

let test_robustness_render_golden () =
  (* Golden row shape: header columns, one body line per row, the winning
     heuristic named in its short form — and rows reproducible per seed. *)
  let mk family =
    Experiments.Robustness.run_row ~seeds:2 ~n:60 ~p:12 ~dv:2 ~dh:3 ~family
      ~weights:Hyper.Weights.Related ()
  in
  let uni = mk Experiments.Robustness.Uniform in
  let zipf = mk (Experiments.Robustness.Powerlaw 1.5) in
  let text = Experiments.Robustness.render [ uni; zipf ] in
  List.iter
    (fun needle -> check ("render column: " ^ needle) true (contains ~needle text))
    [ "Family"; "LB"; "best"; uni.Experiments.Robustness.label; zipf.Experiments.Robustness.label ];
  List.iter
    (fun row ->
      check "label carries the family" true
        (contains
           ~needle:(Experiments.Robustness.family_label row.Experiments.Robustness.family)
           row.Experiments.Robustness.label);
      check "LB positive" true (row.Experiments.Robustness.lb > 0.0);
      Alcotest.(check int) "one ratio per heuristic" 4
        (List.length row.Experiments.Robustness.ratios);
      List.iter
        (fun (_, x) -> check "ratio >= 1" true (x >= 1.0 -. 1e-9))
        row.Experiments.Robustness.ratios)
    [ uni; zipf ];
  let uni' = mk Experiments.Robustness.Uniform in
  check "run_row deterministic per seed" true (uni' = uni)

let test_fault_sweep_row () =
  let row = Experiments.Fault_sweep.run_row ~seeds:2 ~n:48 ~p:12 ~kill_fraction:0.25 () in
  Alcotest.(check (float 1e-9)) "fraction echoed" 0.25 row.Experiments.Fault_sweep.kill_fraction;
  check "repair ratio >= 1" true (row.Experiments.Fault_sweep.repair_ratio >= 1.0 -. 1e-9);
  check "resolve ratio >= 1" true (row.Experiments.Fault_sweep.resolve_ratio >= 1.0 -. 1e-9);
  (* Repair keeps the min of incremental and from-scratch, so its median
     ratio can never sit above the re-solve's. *)
  check "repair <= resolve" true
    (row.Experiments.Fault_sweep.repair_ratio
    <= row.Experiments.Fault_sweep.resolve_ratio +. 1e-9);
  check "counts are sane" true
    (row.Experiments.Fault_sweep.affected_mean >= 0.0
    && row.Experiments.Fault_sweep.moved_mean >= 0.0
    && row.Experiments.Fault_sweep.infeasible_mean >= 0.0
    && row.Experiments.Fault_sweep.resolve_wins >= 0
    && row.Experiments.Fault_sweep.resolve_wins <= 2);
  let row' = Experiments.Fault_sweep.run_row ~seeds:2 ~n:48 ~p:12 ~kill_fraction:0.25 () in
  check "row deterministic per seed" true (row' = row)

let test_fault_sweep_render_and_json () =
  let rows =
    List.map
      (fun kill_fraction ->
        Experiments.Fault_sweep.run_row ~seeds:1 ~n:32 ~p:8 ~kill_fraction ())
      [ 0.125; 0.25 ]
  in
  let text = Experiments.Fault_sweep.render rows in
  List.iter
    (fun needle -> check ("sweep column: " ^ needle) true (contains ~needle text))
    [ "Killed"; "affected"; "moved"; "infeasible"; "repair/LB"; "resolve/LB"; "12.5%"; "25%" ];
  let path = Filename.temp_file "fault_sweep" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Experiments.Fault_sweep.write_json path rows;
      let lines =
        In_channel.with_open_text path In_channel.input_all
        |> String.split_on_char '\n'
        |> List.filter (fun l -> l <> "")
      in
      Alcotest.(check int) "one JSON object per row" 2 (List.length lines);
      List.iter
        (fun line -> check "row fields present" true (contains ~needle:"\"kill_fraction\"" line))
        lines)

let test_ablations_smoke () =
  let text = Experiments.Ablations.run_all ~seeds:1 ~scale:16 () in
  List.iter
    (fun needle -> check ("ablation section: " ^ needle) true (contains ~needle text))
    [ "vector-heuristic variant"; "matching engine"; "search strategy"; "randomized baselines";
      "harvey" ]

let suite =
  [
    Alcotest.test_case "paper grid matches Table I" `Quick test_grid_matches_table1;
    Alcotest.test_case "parameter sweep" `Quick test_sweep;
    Alcotest.test_case "weighted singleproc study" `Quick test_weighted_sp;
    Alcotest.test_case "online arrivals study" `Quick test_online;
    Alcotest.test_case "hardness study" `Quick test_hardness;
    Alcotest.test_case "bound quality study" `Quick test_bounds;
    Alcotest.test_case "robustness study" `Quick test_robustness;
    Alcotest.test_case "robustness render golden" `Quick test_robustness_render_golden;
    Alcotest.test_case "fault sweep row" `Quick test_fault_sweep_row;
    Alcotest.test_case "fault sweep render and json" `Quick test_fault_sweep_render_and_json;
    Alcotest.test_case "ablations smoke" `Quick test_ablations_smoke;
    Alcotest.test_case "scaling" `Quick test_scaled;
    Alcotest.test_case "per-seed determinism" `Quick test_generate_deterministic_per_seed;
    Alcotest.test_case "singleproc grid" `Quick test_singleproc_grid;
    Alcotest.test_case "table rendering" `Quick test_table_render;
    Alcotest.test_case "csv escaping" `Quick test_csv;
    Alcotest.test_case "runner row" `Quick test_runner_row;
    Alcotest.test_case "runner rendering" `Quick test_runner_render;
    Alcotest.test_case "singleproc runner row" `Quick test_sp_runner_row;
    Alcotest.test_case "ratio sanity" `Quick test_ratio_sanity_vs_brute_force;
  ]
