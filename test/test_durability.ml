(* Durability tests: journal framing and torn-tail recovery, checkpoint
   atomicity, idempotency-cache semantics, and the kill -9 chaos harness —
   a real daemon process driven over a Unix socket, killed without warning
   at a random point in a seeded mutating script, restarted on the same
   persist dir, and required to serve session snapshots byte-identical to
   an in-process Loopback replay of exactly the acknowledged prefix.

   Why byte-identity is a sound oracle under every fsync policy: kill -9
   ends the process but loses nothing the kernel already holds, so the
   journal file contains every record whose reply was flushed (the engine
   journals before replying).  The fsync policies differ only in the
   window a *power* loss could lose — which is exactly why the torn-tail
   runs below mangle the journal by hand instead. *)

module J = Obs.Json
module Journal = Server.Journal
module Persist = Server.Persist

let check = Alcotest.(check bool)
let line fields = J.to_string (J.Obj fields)

let field reply name =
  match J.member name (J.of_string reply) with
  | Some v -> v
  | None -> Alcotest.failf "reply lacks %S: %s" name reply

let is_ok reply = match field reply "ok" with J.Bool b -> b | _ -> false

let expect_ok reply =
  if not (is_ok reply) then Alcotest.failf "expected ok reply, got %s" reply;
  reply

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_temp_dir prefix f =
  let dir = temp_dir prefix in
  Fun.protect ~finally:(fun () -> try rm_rf dir with Unix.Unix_error _ -> ()) (fun () -> f dir)

(* --- journal framing ----------------------------------------------------- *)

let test_crc32_vector () =
  (* The CRC-32 (IEEE, reflected) check vector. *)
  Alcotest.(check int32) "crc32 check vector" 0xCBF43926l (Journal.crc32 "123456789")

let test_journal_roundtrip_and_torn_tail () =
  with_temp_dir "journal" (fun dir ->
      let path = Filename.concat dir "j.wal" in
      let w = Journal.open_writer ~policy:Journal.Always path in
      let payloads = [ "alpha"; ""; String.make 3000 'x'; "{\"op\":\"ping\"}" ] in
      List.iter (Journal.append w) payloads;
      Journal.close w;
      let s = Journal.scan path in
      Alcotest.(check int) "all records back" (List.length payloads)
        (List.length s.Journal.s_records);
      List.iter2
        (fun expected (r : Journal.record) ->
          Alcotest.(check string) "payload survives" expected r.Journal.payload)
        payloads s.Journal.s_records;
      Alcotest.(check int) "no torn bytes" s.Journal.s_total_bytes s.Journal.s_valid_bytes;
      let valid = s.Journal.s_valid_bytes in
      (* A crash mid-append: garbage after the last complete record. *)
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc "\x2a\x00\x00\x00GARBAGE";
      close_out oc;
      let s2 = Journal.scan path in
      Alcotest.(check int) "torn tail keeps the valid prefix" (List.length payloads)
        (List.length s2.Journal.s_records);
      Alcotest.(check int) "valid prefix unchanged" valid s2.Journal.s_valid_bytes;
      check "tail detected" true (s2.Journal.s_total_bytes > s2.Journal.s_valid_bytes);
      Journal.truncate path s2.Journal.s_valid_bytes;
      let s3 = Journal.scan path in
      Alcotest.(check int) "clean after truncation" s3.Journal.s_total_bytes
        s3.Journal.s_valid_bytes;
      (* Appending after recovery keeps working. *)
      let w2 = Journal.open_writer ~policy:Journal.Never path in
      Journal.append w2 "after";
      Journal.close w2;
      let s4 = Journal.scan path in
      Alcotest.(check int) "append after truncate" (List.length payloads + 1)
        (List.length s4.Journal.s_records))

let test_journal_corrupt_middle_stops_scan () =
  with_temp_dir "journal" (fun dir ->
      let path = Filename.concat dir "j.wal" in
      let w = Journal.open_writer ~policy:Journal.Always path in
      Journal.append w "one";
      let cut = (Journal.scan path).Journal.s_valid_bytes in
      Journal.append w "two";
      Journal.close w;
      (* Flip a payload byte of the second record: its CRC no longer
         matches, so the scan must stop after the first record. *)
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      ignore (Unix.lseek fd (cut + 8) Unix.SEEK_SET);
      ignore (Unix.write fd (Bytes.of_string "T") 0 1);
      Unix.close fd;
      let s = Journal.scan path in
      Alcotest.(check int) "scan stops at the corrupt record" 1
        (List.length s.Journal.s_records);
      Alcotest.(check int) "valid prefix is the first record" cut s.Journal.s_valid_bytes)

(* --- checkpoint atomicity ------------------------------------------------ *)

let session_state () =
  let h =
    Hyper.Graph.create ~n1:2 ~n2:2
      ~hyperedges:[ (0, [| 0 |], 1.0); (1, [| 0; 1 |], 2.0) ]
  in
  let s, _ = Server.Session.of_graph ~id:"s" h in
  Server.Session.snapshot s

let test_checkpoint_atomicity () =
  with_temp_dir "persist" (fun dir ->
      let p, _ = Persist.open_ ~dir ~policy:Journal.Never ~version:"test" in
      let state = session_state () in
      (match Persist.checkpoint p ~sessions:[ ("s", state) ] with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "checkpoint failed: %s" msg);
      Persist.log p ~lines:[ "{\"op\":\"ping\"}" ] ~cached:[];
      Persist.close p;
      (* Simulate a crash mid-checkpoint: a stale tmp dir plus a newer
         checkpoint directory whose manifest never landed (the manifest is
         written last, so its absence means the rename never happened
         either — this models the worst observable wreckage). *)
      let tmp = Filename.concat dir ".ckpt.tmp" in
      Unix.mkdir tmp 0o755;
      Out_channel.with_open_text (Filename.concat tmp "sessions.jsonl") (fun oc ->
          Out_channel.output_string oc "half-written");
      let broken = Filename.concat dir "ckpt-000009" in
      Unix.mkdir broken 0o755;
      Out_channel.with_open_text (Filename.concat broken "sessions.jsonl") (fun oc ->
          Out_channel.output_string oc "{}");
      let r = Persist.load dir in
      (match r.Persist.r_checkpoint with
      | Some name -> Alcotest.(check string) "previous checkpoint still wins" "ckpt-000001" name
      | None -> Alcotest.fail "no checkpoint recovered");
      Alcotest.(check int) "broken checkpoint reported" 1 (List.length r.Persist.r_skipped);
      Alcotest.(check int) "session state intact" 1 (List.length r.Persist.r_sessions);
      Alcotest.(check int) "journal suffix intact" 1 r.Persist.r_records)

(* --- idempotency over loopback ------------------------------------------ *)

let tiny_instance () =
  Hyper.Io.to_string
    (Hyper.Graph.create ~n1:2 ~n2:2
       ~hyperedges:[ (0, [| 0 |], 1.0); (1, [| 0 |], 2.0); (1, [| 1 |], 2.0) ])

let test_idempotency_dedup () =
  Obs.with_recording (fun () ->
      let lb = Server.Loopback.create () in
      ignore
        (expect_ok
           (Server.Loopback.request lb
              (line
                 [
                   ("op", J.Str "load"); ("session", J.Str "i");
                   ("instance", J.Str (tiny_instance ()));
                 ])));
      let add =
        line
          [
            ("op", J.Str "add_task"); ("session", J.Str "i");
            ("configs", J.List [ J.Obj [ ("procs", J.List [ J.Num 1.0 ]); ("weight", J.Num 1.0) ] ]);
            ("idem", J.Str "retry-1");
          ]
      in
      let r1 = expect_ok (Server.Loopback.request lb add) in
      let r2 = expect_ok (Server.Loopback.request lb add) in
      Alcotest.(check string) "duplicate answered with the cached reply verbatim" r1 r2;
      (match Server.Engine.resident (Server.Loopback.engine lb) with
      | [ (_, s) ] ->
          Alcotest.(check int) "mutation applied exactly once" 3 (Server.Session.n_tasks s)
      | _ -> Alcotest.fail "one session expected");
      (* A different key applies normally. *)
      let add2 =
        line
          [
            ("op", J.Str "add_task"); ("session", J.Str "i");
            ("configs", J.List [ J.Obj [ ("procs", J.List [ J.Num 1.0 ]); ("weight", J.Num 1.0) ] ]);
            ("idem", J.Str "retry-2");
          ]
      in
      ignore (expect_ok (Server.Loopback.request lb add2));
      (match Server.Engine.resident (Server.Loopback.engine lb) with
      | [ (_, s) ] -> Alcotest.(check int) "fresh key applies" 4 (Server.Session.n_tasks s)
      | _ -> Alcotest.fail "one session expected");
      (* Error replies are not cached: a failing mutation retried under the
         same key runs again (and can succeed after the cause is fixed). *)
      let bad =
        line
          [
            ("op", J.Str "remove_task"); ("session", J.Str "i"); ("task", J.Num 999.0);
            ("idem", J.Str "retry-3");
          ]
      in
      check "error reply" false (is_ok (Server.Loopback.request lb bad));
      check "error not cached, runs again" false (is_ok (Server.Loopback.request lb bad)))

(* --- the kill -9 chaos harness ------------------------------------------- *)

(* Resolve the CLI binary like test_cli.ml does. *)
let cli =
  let exe_dir = Filename.dirname Sys.executable_name in
  let candidates =
    [
      Filename.concat exe_dir "../bin/semimatch_cli.exe";
      "../bin/semimatch_cli.exe";
      "_build/default/bin/semimatch_cli.exe";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> List.hd candidates

let spawn_daemon ~sock ~persist ~fsync =
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let argv =
    [|
      cli; "serve"; "--socket"; sock; "--persist-dir"; persist; "--fsync"; fsync;
      "--checkpoint-secs"; "0";
    |]
  in
  (* Park the Runtime_events ring file in the run's temp dir: a SIGKILLed
     daemon cannot unlink its own ring, and it must not litter the cwd. *)
  let env =
    Array.append (Unix.environment ())
      [| "OCAML_RUNTIME_EVENTS_DIR=" ^ Filename.dirname sock |]
  in
  let pid = Unix.create_process_env cli argv env Unix.stdin null null in
  Unix.close null;
  pid

let connect_retry ?(timeout_s = 10.0) pid sock =
  let t0 = Unix.gettimeofday () in
  let rec loop () =
    match Server.Client.connect_unix sock with
    | c -> c
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) ->
        (match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ -> ()
        | _, _ -> Alcotest.fail "daemon exited before accepting connections");
        if Unix.gettimeofday () -. t0 > timeout_s then
          Alcotest.fail "daemon socket never became connectable";
        Unix.sleepf 0.02;
        loop ()
  in
  loop ()

let kill_hard pid =
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid)

let graceful_shutdown conn pid =
  ignore (expect_ok (Server.Client.request ~timeout_s:10.0 conn (line [ ("op", J.Str "shutdown") ])));
  Server.Client.close conn;
  ignore (Unix.waitpid [] pid)

let chaos_session = "chaos"

(* A deterministic mutating script: load, then a seeded mix of add_task /
   remove_task / kill_proc (plus the odd forced checkpoint), all of whose
   effects replay deterministically at jobs = 1 — which is what makes the
   Loopback reference an exact oracle.  Budgeted resolve/solve are *not*
   in the mix: their outcome is time-dependent, which is exactly why the
   engine journals their resulting state instead of their request (covered
   by the resolve run below). *)
let gen_script ~seed =
  let rng = Randkit.Prng.create ~seed in
  let n = 10 and p = 6 in
  let h =
    Hyper.Generate.generate rng ~family:Hyper.Generate.Fewg_manyg ~n ~p ~dv:3 ~dh:3 ~g:2
      ~weights:Hyper.Weights.Unit
  in
  let live = ref (List.init n Fun.id) in
  let next = ref n in
  let out = ref [] in
  let push fields = out := line fields :: !out in
  push
    [
      ("op", J.Str "load"); ("session", J.Str chaos_session);
      ("instance", J.Str (Hyper.Io.to_string h));
      ("idem", J.Str (Printf.sprintf "c%d-load" seed));
    ];
  for i = 1 to 24 do
    let u = Randkit.Prng.float rng 1.0 in
    let idem = ("idem", J.Str (Printf.sprintf "c%d-%d" seed i)) in
    if u < 0.45 || !live = [] then begin
      let n_cfg = 1 + Randkit.Prng.int rng 2 in
      let config () =
        let k = 1 + Randkit.Prng.int rng 2 in
        let procs = Randkit.Prng.sample_without_replacement rng ~k ~n:p in
        J.Obj
          [
            ("procs", J.List (Array.to_list (Array.map (fun q -> J.Num (float_of_int q)) procs)));
            ("weight", J.Num (0.5 +. Randkit.Prng.float rng 1.5));
          ]
      in
      push
        [
          ("op", J.Str "add_task"); ("session", J.Str chaos_session);
          ("configs", J.List (List.init n_cfg (fun _ -> config ()))); idem;
        ];
      live := !next :: !live;
      incr next
    end
    else if u < 0.75 then begin
      let a = Array.of_list !live in
      let tid = a.(Randkit.Prng.int rng (Array.length a)) in
      live := List.filter (fun t -> t <> tid) !live;
      push
        [
          ("op", J.Str "remove_task"); ("session", J.Str chaos_session);
          ("task", J.Num (float_of_int tid)); idem;
        ]
    end
    else if u < 0.9 then
      push
        [
          ("op", J.Str "kill_proc"); ("session", J.Str chaos_session);
          ("proc", J.Num (float_of_int (Randkit.Prng.int rng p))); idem;
        ]
    else
      (* Forced checkpoints mid-script: the daemon rotates its journal, so
         recovery exercises checkpoint + journal-suffix; over the Loopback
         reference (no persist dir) this is an error reply that mutates
         nothing, keeping the two paths comparable. *)
      push [ ("op", J.Str "checkpoint") ]
  done;
  List.rev !out

let snapshot_request = line [ ("op", J.Str "snapshot"); ("session", J.Str chaos_session) ]

(* The oracle: the same acked prefix driven through an in-process engine. *)
let reference_snapshot prefix =
  Obs.with_recording (fun () ->
      let lb = Server.Loopback.create () in
      List.iter (fun l -> ignore (Server.Loopback.request lb l)) prefix;
      Server.Loopback.request lb snapshot_request)

type mangle = Clean | Garbage | PartialRecord

let mangle_journal persist how =
  match how with
  | Clean -> ()
  | _ ->
      let journals =
        Sys.readdir persist |> Array.to_list
        |> List.filter (fun n -> Filename.check_suffix n ".wal")
        |> List.sort compare
      in
      let newest =
        match List.rev journals with
        | j :: _ -> Filename.concat persist j
        | [] -> Alcotest.fail "no journal to mangle"
      in
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 newest in
      (match how with
      | Garbage -> output_string oc "\xde\xad\xbe\xef torn tail"
      | PartialRecord ->
          (* A plausible header promising 64 bytes, with only 5 present —
             what a crash mid-[write] leaves. *)
          let b = Bytes.create 8 in
          Bytes.set_int32_le b 0 64l;
          Bytes.set_int32_le b 4 0l;
          output_bytes oc b;
          output_string oc "hello"
      | Clean -> ());
      close_out oc

(* One chaos run: drive [kill_at] acked requests into a real daemon, kill
   it with SIGKILL, optionally mangle the journal tail, restart on the
   same persist dir, and compare the recovered snapshot byte-for-byte with
   the Loopback oracle.  Also checks the recovered daemon still *serves*
   (the snapshot request itself) and shuts down cleanly. *)
let chaos_once ~seed ~fsync ~kill_at ~mangle =
  with_temp_dir "chaos" (fun dir ->
      let sock = Filename.concat dir "d.sock" in
      let persist = Filename.concat dir "persist" in
      let script = gen_script ~seed in
      let kill_at = 1 + (kill_at mod List.length script) in
      let prefix = List.filteri (fun i _ -> i < kill_at) script in
      let pid = spawn_daemon ~sock ~persist ~fsync in
      let conn = connect_retry pid sock in
      List.iter
        (fun l -> ignore (expect_ok (Server.Client.request ~timeout_s:30.0 conn l)))
        prefix;
      Server.Client.close conn;
      kill_hard pid;
      mangle_journal persist mangle;
      let pid2 = spawn_daemon ~sock ~persist ~fsync in
      let conn2 = connect_retry pid2 sock in
      let got = Server.Client.request ~timeout_s:30.0 conn2 snapshot_request in
      let want = reference_snapshot prefix in
      Alcotest.(check string)
        (Printf.sprintf "seed %d, fsync %s, kill at %d: recovered snapshot" seed fsync kill_at)
        want got;
      graceful_shutdown conn2 pid2)

let test_chaos_kill9 () =
  (* >= 20 kill points spread across the script and both fsync policies. *)
  for i = 0 to 9 do
    chaos_once ~seed:(1000 + i) ~fsync:"always" ~kill_at:(1 + (i * 7)) ~mangle:Clean;
    chaos_once ~seed:(2000 + i) ~fsync:"interval:50" ~kill_at:(3 + (i * 5)) ~mangle:Clean
  done

let test_chaos_torn_tail () =
  (* A mangled journal tail — garbage bytes, then a truncated record —
     must be truncated by recovery, never crash it, and never change the
     acked prefix. *)
  chaos_once ~seed:3001 ~fsync:"interval:50" ~kill_at:9 ~mangle:Garbage;
  chaos_once ~seed:3002 ~fsync:"always" ~kill_at:14 ~mangle:PartialRecord

(* Budgeted resolve is journaled as its *resulting state* (replay of the
   search would be time-dependent): after kill -9, the recovered makespan
   must equal what the daemon acked, even though no oracle can re-run the
   search. *)
let test_chaos_resolve_state_record () =
  with_temp_dir "chaos" (fun dir ->
      let sock = Filename.concat dir "d.sock" in
      let persist = Filename.concat dir "persist" in
      let pid = spawn_daemon ~sock ~persist ~fsync:"always" in
      let conn = connect_retry pid sock in
      let script = gen_script ~seed:4001 in
      List.iter
        (fun l -> ignore (expect_ok (Server.Client.request ~timeout_s:30.0 conn l)))
        script;
      ignore
        (expect_ok
           (Server.Client.request ~timeout_s:60.0 conn
              (line
                 [
                   ("op", J.Str "resolve"); ("session", J.Str chaos_session);
                   ("budget_ms", J.Num 50.0);
                 ])));
      let before = Server.Client.request ~timeout_s:30.0 conn snapshot_request in
      Server.Client.close conn;
      kill_hard pid;
      let pid2 = spawn_daemon ~sock ~persist ~fsync:"always" in
      let conn2 = connect_retry pid2 sock in
      let after = Server.Client.request ~timeout_s:30.0 conn2 snapshot_request in
      Alcotest.(check string) "resolve outcome survives the crash" before after;
      graceful_shutdown conn2 pid2)

let test_sigterm_graceful () =
  with_temp_dir "sigterm" (fun dir ->
      let sock = Filename.concat dir "d.sock" in
      let persist = Filename.concat dir "persist" in
      let pid = spawn_daemon ~sock ~persist ~fsync:"never" in
      let conn = connect_retry pid sock in
      let prefix = List.filteri (fun i _ -> i < 6) (gen_script ~seed:5001) in
      List.iter
        (fun l -> ignore (expect_ok (Server.Client.request ~timeout_s:30.0 conn l)))
        prefix;
      let before = Server.Client.request ~timeout_s:30.0 conn snapshot_request in
      Server.Client.close conn;
      Unix.kill pid Sys.sigterm;
      (match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, st ->
          Alcotest.failf "SIGTERM exit: %s"
            (match st with
            | Unix.WEXITED c -> Printf.sprintf "exited %d" c
            | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
            | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s));
      check "socket file unlinked on graceful shutdown" false (Sys.file_exists sock);
      check "final checkpoint written" true
        (Array.exists
           (fun n -> String.length n >= 5 && String.sub n 0 5 = "ckpt-")
           (Sys.readdir persist));
      (* The final checkpoint alone (fsync=never, journal rotated away)
         recovers the full state. *)
      let pid2 = spawn_daemon ~sock ~persist ~fsync:"never" in
      let conn2 = connect_retry pid2 sock in
      let after = Server.Client.request ~timeout_s:30.0 conn2 snapshot_request in
      Alcotest.(check string) "state survives SIGTERM via the final checkpoint" before after;
      graceful_shutdown conn2 pid2)

let suite =
  [
    Alcotest.test_case "crc32 check vector" `Quick test_crc32_vector;
    Alcotest.test_case "journal roundtrip and torn tail" `Quick
      test_journal_roundtrip_and_torn_tail;
    Alcotest.test_case "journal scan stops at corruption" `Quick
      test_journal_corrupt_middle_stops_scan;
    Alcotest.test_case "checkpoint atomicity" `Quick test_checkpoint_atomicity;
    Alcotest.test_case "idempotency dedup over loopback" `Quick test_idempotency_dedup;
    Alcotest.test_case "kill -9 chaos: 20 kill points, both fsync policies" `Slow
      test_chaos_kill9;
    Alcotest.test_case "kill -9 chaos: torn journal tails" `Slow test_chaos_torn_tail;
    Alcotest.test_case "kill -9 chaos: resolve state record" `Slow
      test_chaos_resolve_state_record;
    Alcotest.test_case "SIGTERM writes a final checkpoint" `Quick test_sigterm_graceful;
  ]
