(* Online-arrival study (Experiments.Online): arrival-order determinism and
   sanity of the empirical competitive ratios on small instances. *)

module Online = Experiments.Online
module Instances = Experiments.Instances

let check = Alcotest.(check bool)

let small_spec =
  {
    Instances.sp_name = "T-60-12";
    sp_family = `Fewg_manyg;
    sp_n = 60;
    sp_p = 12;
    sp_d = 3;
    sp_g = 3;
  }

let equal_rows (a : Online.row) (b : Online.row) =
  a.Online.label = b.Online.label && a.Online.optimum = b.Online.optimum
  && a.Online.mean_ratio = b.Online.mean_ratio
  && a.Online.worst_ratio = b.Online.worst_ratio
  && a.Online.best_ratio = b.Online.best_ratio

let test_determinism () =
  (* Instances and arrival orders are both seeded, so the whole study is a
     pure function of (spec, seeds, orders). *)
  let a = Online.run_row ~seeds:2 ~orders:6 small_spec in
  let b = Online.run_row ~seeds:2 ~orders:6 small_spec in
  check "identical rows on repeat" true (equal_rows a b);
  let c = Online.run_row ~seeds:2 ~orders:7 small_spec in
  check "more orders can only widen the spread" true
    (c.Online.worst_ratio >= b.Online.worst_ratio -. 1e-9
    || c.Online.best_ratio <= b.Online.best_ratio +. 1e-9)

let test_ratio_sanity () =
  let r = Online.run_row ~seeds:2 ~orders:10 small_spec in
  (* Online placement is irrevocable, so it can never beat the offline
     optimum: every ratio is >= 1, and the aggregates are ordered. *)
  check "best >= 1" true (r.Online.best_ratio >= 1.0 -. 1e-9);
  check "mean >= best" true (r.Online.mean_ratio >= r.Online.best_ratio -. 1e-9);
  check "worst >= mean" true (r.Online.worst_ratio >= r.Online.mean_ratio -. 1e-9);
  check "optimum positive" true (r.Online.optimum > 0.0)

let test_grid_run_and_render () =
  let rows = Online.run ~seeds:1 ~orders:3 ~scale:64 () in
  check "one row per family instance" true (List.length rows > 0);
  let labels = List.map (fun r -> r.Online.label) rows in
  check "labels distinct" true (List.length (List.sort_uniq compare labels) = List.length labels);
  List.iter
    (fun r -> check (r.Online.label ^ " ratio sane") true (r.Online.worst_ratio >= 1.0 -. 1e-9))
    rows;
  let text = Online.render rows in
  let contains ~needle haystack =
    let nl = String.length needle and hl = String.length haystack in
    let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
    scan 0
  in
  check "render has the header" true (contains ~needle:"mean ratio" text);
  List.iter (fun l -> check ("render lists " ^ l) true (contains ~needle:l text)) labels

let suite =
  [
    Alcotest.test_case "arrival-order determinism" `Quick test_determinism;
    Alcotest.test_case "ratio sanity" `Quick test_ratio_sanity;
    Alcotest.test_case "grid run and render" `Quick test_grid_run_and_render;
  ]
