(* Flight recorder and anomaly-trigger tests: the rule spec grammar, the
   per-kind cooldown, each observer, the heap-growth poll with a synthetic
   curve, the watchdog bracket (live and post-hoc), the bounded snapshot
   ring, and bundle writing — then the whole stack end-to-end through the
   loopback engine with a deliberately stalled solve. *)

module A = Obs.Anomaly
module R = Obs.Recorder
module J = Obs.Json
module L = Server.Loopback

let check = Alcotest.(check bool)

(* --- rule specs --------------------------------------------------------- *)

let test_rule_specs () =
  (* Every rule round-trips through its own spec rendering. *)
  List.iter
    (fun spec ->
      Alcotest.(check string)
        ("round-trip " ^ spec) spec
        (A.rule_to_string (A.rule_of_string spec)))
    [
      "latency:250"; "latency:resolve:1000"; "overbudget:4"; "queue:32"; "busy:64@5";
      "heap:512@10"; "stall:5000";
    ];
  Alcotest.(check int) "comma list" 3 (List.length (A.rules_of_string "latency:1, stall:2 ,queue:3"));
  Alcotest.(check int) "empty segments skipped" 0 (List.length (A.rules_of_string " , ,"));
  List.iter
    (fun bad ->
      match A.rule_of_string bad with
      | _ -> Alcotest.failf "accepted bad spec %S" bad
      | exception Failure msg ->
          check ("error names the spec: " ^ msg) true (String.length msg > 0))
    [ "latency"; "latency:-3"; "latency:abc"; "overbudget:0.5"; "queue:0"; "busy:5";
      "heap:512"; "stall:0"; "wat:1"; "" ];
  (* The shipped default set parses back from its own rendering. *)
  List.iter
    (fun r ->
      Alcotest.(check string) "default round-trips" (A.rule_to_string r)
        (A.rule_to_string (A.rule_of_string (A.rule_to_string r))))
    A.default_rules

(* --- observers and cooldown --------------------------------------------- *)

let test_latency_and_cooldown () =
  let t = A.create ~cooldown_s:3600.0 [ A.rule_of_string "latency:100" ] in
  check "under threshold" true (A.observe_request t ~op:"ping" ~ms:50.0 = None);
  check "over threshold fires" true (A.observe_request t ~op:"ping" ~ms:150.0 <> None);
  check "cooldown suppresses" true (A.observe_request t ~op:"ping" ~ms:150.0 = None);
  Alcotest.(check int) "one firing counted" 1 (A.firings t);
  check "last firing recorded" true
    (match A.last_firing t with Some ("latency:100", _) -> true | _ -> false);
  (* Zero cooldown: every breach fires. *)
  let t0 = A.create ~cooldown_s:0.0 [ A.rule_of_string "latency:100" ] in
  check "fires" true (A.observe_request t0 ~op:"a" ~ms:200.0 <> None);
  check "fires again" true (A.observe_request t0 ~op:"b" ~ms:200.0 <> None);
  (* Op-scoped rule ignores other ops. *)
  let ts = A.create ~cooldown_s:0.0 [ A.rule_of_string "latency:resolve:100" ] in
  check "other op ignored" true (A.observe_request ts ~op:"ping" ~ms:500.0 = None);
  check "named op fires" true (A.observe_request ts ~op:"resolve" ~ms:500.0 <> None)

let test_budget_queue_busy () =
  let t = A.create ~cooldown_s:0.0 [ A.rule_of_string "overbudget:2" ] in
  check "within budget" true (A.observe_solve t ~op:"resolve" ~budget_ms:10.0 ~elapsed_ms:15.0 = None);
  check "over factor fires" true
    (A.observe_solve t ~op:"resolve" ~budget_ms:10.0 ~elapsed_ms:25.0 <> None);
  check "zero budget never fires" true
    (A.observe_solve t ~op:"resolve" ~budget_ms:0.0 ~elapsed_ms:1e6 = None);
  let q = A.create ~cooldown_s:0.0 [ A.rule_of_string "queue:8" ] in
  check "shallow queue" true (A.observe_queue q ~pending:7 = None);
  check "deep queue fires" true (A.observe_queue q ~pending:8 <> None);
  let b = A.create ~cooldown_s:0.0 [ A.rule_of_string "busy:3@10" ] in
  check "first busy" true (A.observe_busy b = None);
  check "second busy" true (A.observe_busy b = None);
  check "third busy fires" true (A.observe_busy b <> None)

let test_heap_poll_synthetic () =
  let t = A.create ~cooldown_s:0.0 [ A.rule_of_string "heap:1@0.3" ] in
  check "baseline sample" true (A.poll ~heap_bytes:1e6 t = None);
  Unix.sleepf 0.16;
  (* Flat heap: no firing however long the baseline. *)
  check "flat heap quiet" true (A.poll ~heap_bytes:1e6 t = None);
  Unix.sleepf 0.02;
  (* +10MB over ~0.18s is far above 1 MB/s. *)
  check "growth fires" true (A.poll ~heap_bytes:11e6 t <> None);
  (* A rule set without heap rules never samples. *)
  let n = A.create ~cooldown_s:0.0 [ A.rule_of_string "latency:1" ] in
  check "no heap rule, no firing" true (A.poll ~heap_bytes:1e12 n = None)

(* --- watchdog ----------------------------------------------------------- *)

let test_watchdog_live_and_posthoc () =
  let t = A.create ~cooldown_s:0.0 [ A.rule_of_string "stall:60" ] in
  check "idle engine is never stuck" true (A.check_stuck t = None);
  A.solve_begin t ~op:"resolve" ~session:"s1" ~request:{|{"op":"resolve"}|} ();
  check "fresh solve not yet stuck" true (A.check_stuck t = None);
  Unix.sleepf 0.12;
  (match A.check_stuck t with
  | None -> Alcotest.fail "live check missed a 120ms silence against a 60ms rule"
  | Some f ->
      check "live phase tagged" true (List.assoc_opt "phase" f.A.f_detail = Some (J.Str "live"));
      check "request captured" true
        (List.assoc_opt "request" f.A.f_detail = Some (J.Str {|{"op":"resolve"}|})));
  let w = A.watchdog t in
  check "watchdog sees the op" true (w.A.w_op = Some "resolve");
  check "silence measured" true (w.A.w_silent_ms >= 100.0);
  check "post-hoc fires too" true (A.solve_end t <> None);
  check "bracket closed" true ((A.watchdog t).A.w_inflight = false);
  (* A solve that beats steadily never trips either check. *)
  A.solve_begin t ~op:"resolve" ~request:"r" ();
  for _ = 1 to 5 do
    Unix.sleepf 0.02;
    A.beat t
  done;
  check "beating solve not stuck" true (A.check_stuck t = None);
  check "no post-hoc firing" true (A.solve_end t = None)

(* A stall that ends before the bracket closes must still be caught post
   hoc: the beat that ended the silence recorded its length. *)
let test_posthoc_after_recovery () =
  Obs.with_recording (fun () ->
      let t = A.create ~cooldown_s:0.0 [ A.rule_of_string "stall:60" ] in
      A.solve_begin t ~op:"resolve" ~request:"r" ();
      Unix.sleepf 0.12;
      (* Recovery: telemetry activity bumps the global heartbeat... *)
      Obs.Events.emit "recovered" [];
      Unix.sleepf 0.01;
      (* ...yet the earlier silence still fires when the bracket closes. *)
      match A.solve_end t with
      | None -> Alcotest.fail "post-hoc check forgot a stall that ended before solve_end"
      | Some f ->
          check "post phase tagged" true (List.assoc_opt "phase" f.A.f_detail = Some (J.Str "post")))

(* --- recorder ----------------------------------------------------------- *)

let with_reset_rings f =
  Fun.protect
    ~finally:(fun () ->
      R.stop ();
      Obs.Span.set_capacity 4096;
      Obs.Events.set_capacity 8192)
    f

let test_snapshot_ring_bounded () =
  with_reset_rings (fun () ->
      R.start
        ~config:
          {
            R.default_config with
            R.window_s = 5.0;
            snapshot_every_s = 0.01;
            max_snapshots = 3;
          }
        ();
      check "recorder running" true (R.started ());
      for i = 1 to 6 do
        Unix.sleepf 0.015;
        check
          (Printf.sprintf "tick %d due" i)
          true
          (R.tick ~prom:(fun () -> Printf.sprintf "snap %d" i) ())
      done;
      let snaps = R.snapshots () in
      Alcotest.(check int) "ring bounded" 3 (List.length snaps);
      check "oldest evicted, newest kept" true
        (match List.rev snaps with s :: _ -> s.R.snap_prom = "snap 6" | [] -> false);
      check "immediate re-tick not due" true (not (R.tick ~prom:(fun () -> "x") ())));
  check "stopped recorder never ticks" true (not (R.tick ()))

let read_file path = In_channel.with_open_bin path In_channel.input_all

let with_temp_dir f =
  let dir = Filename.temp_file "semimatch_bundle" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

let test_write_bundle () =
  Obs.with_recording (fun () ->
      with_reset_rings (fun () ->
          with_temp_dir (fun dir ->
              R.start ~config:{ R.default_config with R.snapshot_every_s = 0.01 } ();
              Obs.Events.emit "bundle.test" [ Obs.Events.int "x" 1 ];
              ignore (Obs.Span.timed "bundle.span" (fun () -> Sys.opaque_identity ()));
              Unix.sleepf 0.02;
              ignore (R.tick ());
              let bundle =
                match
                  R.write_bundle ~dir ~trigger:"unit test!" ~rule:"latency:1"
                    ~detail:[ ("why", J.Str "test") ]
                    ~extra:[ ("request.json", {|{"op":"x"}|}) ]
                    ~version:"t1" ()
                with
                | Ok b -> b
                | Error msg -> Alcotest.failf "write_bundle failed: %s" msg
              in
              check "trigger sanitized in dir name" true
                (not (String.contains (Filename.basename bundle) '!'));
              List.iter
                (fun f ->
                  check (f ^ " written") true (Sys.file_exists (Filename.concat bundle f)))
                [ "manifest.json"; "trace.json"; "events.jsonl"; "metrics.prom";
                  "snapshots.jsonl"; "request.json" ];
              let manifest = J.of_string (read_file (Filename.concat bundle "manifest.json")) in
              check "format tag" true (J.member "format" manifest = Some (J.Str R.format_tag));
              check "trigger recorded" true
                (J.member "trigger" manifest = Some (J.Str "unit test!"));
              check "rule recorded" true (J.member "rule" manifest = Some (J.Str "latency:1"));
              (* Listed byte counts match the files on disk. *)
              (match J.member "files" manifest with
              | Some (J.List files) ->
                  check "extra file listed" true (List.length files = 5);
                  List.iter
                    (fun f ->
                      let name = Option.get (Option.bind (J.member "name" f) J.to_str) in
                      let bytes =
                        int_of_float (Option.get (Option.bind (J.member "bytes" f) J.to_float))
                      in
                      Alcotest.(check int)
                        (name ^ " size matches manifest")
                        bytes
                        (String.length (read_file (Filename.concat bundle name))))
                    files
              | _ -> Alcotest.fail "manifest lacks files list");
              let second =
                match R.write_bundle ~dir ~trigger:"unit test!" ~version:"t1" () with
                | Ok b -> b
                | Error msg -> Alcotest.failf "second bundle failed: %s" msg
              in
              check "bundle dirs unique" true (bundle <> second));
          (* An unwritable destination is an Error, not an exception. *)
          match R.write_bundle ~dir:"/dev/null/nope" ~trigger:"x" ~version:"t" () with
          | Ok _ -> Alcotest.fail "bundle written under /dev/null"
          | Error _ -> ()))

(* --- loopback engine integration ---------------------------------------- *)

let line fields = J.to_string (J.Obj fields)

let tiny () =
  Hyper.Graph.create ~n1:3 ~n2:3
    ~hyperedges:
      [
        (0, [| 0 |], 2.0);
        (0, [| 1 |], 2.0);
        (1, [| 1 |], 1.0);
        (1, [| 2 |], 1.0);
        (2, [| 0; 1 |], 1.0);
        (2, [| 2 |], 3.0);
      ]

let load_line ~session h =
  line
    [ ("op", J.Str "load"); ("session", J.Str session); ("instance", J.Str (Hyper.Io.to_string h)) ]

let is_ok reply = J.member "ok" (J.of_string reply) = Some (J.Bool true)

let expect_ok reply =
  if not (is_ok reply) then Alcotest.failf "expected ok reply, got %s" reply;
  reply

(* A deliberately stalled resolve trips the no-progress rule and produces a
   complete bundle holding the captured instance; a fast run under the same
   rules produces nothing. *)
let test_stalled_solve_bundles () =
  Obs.with_recording (fun () ->
      with_reset_rings (fun () ->
          with_temp_dir (fun dir ->
              R.start ();
              let anomaly = A.create [ A.rule_of_string "stall:80" ] in
              (* The stall plan mirrors Faults ("stall:P@T+D"): reuse its
                 duration for the injected sleep. *)
              let plan = Semimatch.Faults.of_string "stall:0@0+0.12" in
              let stall_s =
                match plan with
                | [ Semimatch.Faults.Stall { dur; _ } ] -> dur
                | _ -> Alcotest.fail "unexpected stall plan shape"
              in
              let before_solve raw =
                if Test_cli.contains ~needle:{|"resolve"|} raw then Unix.sleepf stall_s
              in
              let lb = L.create ~anomaly ~bundle_dir:dir ~before_solve () in
              ignore (expect_ok (L.request lb (load_line ~session:"s" (tiny ()))));
              ignore
                (expect_ok
                   (L.request lb
                      (line
                         [
                           ("op", J.Str "resolve"); ("session", J.Str "s");
                           ("budget_ms", J.Num 1e7);
                         ])));
              Alcotest.(check int) "one bundle written" 1 (Server.Engine.bundles_written (L.engine lb));
              let bundle =
                match Server.Engine.last_bundle (L.engine lb) with
                | Some b -> b
                | None -> Alcotest.fail "no bundle recorded"
              in
              List.iter
                (fun f ->
                  check (f ^ " present") true (Sys.file_exists (Filename.concat bundle f)))
                [ "manifest.json"; "trace.json"; "events.jsonl"; "metrics.prom"; "request.json";
                  "instance.hg"; "session.json" ];
              (* The captured instance replays: same graph, same solve. *)
              let captured = Hyper.Io.load (Filename.concat bundle "instance.hg") in
              let replay = Semimatch.Portfolio.solve captured in
              let direct = Semimatch.Portfolio.solve (tiny ()) in
              Alcotest.(check (float 1e-9))
                "replayed makespan matches the live instance"
                direct.Semimatch.Portfolio.best_makespan replay.Semimatch.Portfolio.best_makespan;
              let manifest = J.of_string (read_file (Filename.concat bundle "manifest.json")) in
              check "stall trigger" true (J.member "trigger" manifest = Some (J.Str "stall")))))

let test_fast_run_fires_nothing () =
  Obs.with_recording (fun () ->
      with_temp_dir (fun dir ->
          let anomaly = A.create [ A.rule_of_string "stall:5000"; A.rule_of_string "latency:5000" ] in
          let lb = L.create ~anomaly ~bundle_dir:dir ~jobs:1 () in
          ignore (expect_ok (L.request lb (load_line ~session:"s" (tiny ()))));
          ignore
            (expect_ok
               (L.request lb
                  (line
                     [
                       ("op", J.Str "resolve"); ("session", J.Str "s"); ("budget_ms", J.Num 1e7);
                     ])));
          ignore (expect_ok (L.request lb (line [ ("op", J.Str "ping") ])));
          Server.Engine.tick (L.engine lb);
          Alcotest.(check int) "no firings" 0 (A.firings anomaly);
          Alcotest.(check int) "no bundles" 0 (Server.Engine.bundles_written (L.engine lb));
          check "bundle dir untouched" true (Array.length (Sys.readdir dir) = 0)))

let test_health_and_dump_ops () =
  Obs.with_recording (fun () ->
      with_reset_rings (fun () ->
          with_temp_dir (fun dir ->
              R.start ();
              let anomaly = A.create [ A.rule_of_string "stall:5000" ] in
              let lb = L.create ~anomaly ~bundle_dir:dir () in
              ignore (expect_ok (L.request lb (load_line ~session:"s" (tiny ()))));
              (* health: cheap, in-memory — well under a millisecond even
                 with the recorder running. *)
              let t0 = Unix.gettimeofday () in
              let reply = expect_ok (L.request lb (line [ ("op", J.Str "health") ])) in
              let dt_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
              check "health answers under 1ms" true (dt_ms < 1.0);
              let j = J.of_string reply in
              check "ready status" true (J.member "status" j = Some (J.Str "ready"));
              check "watchdog reported" true (J.member "watchdog" j <> None);
              (* The probe itself must not count as the in-flight solve. *)
              check "probe not in-flight" true
                (Option.bind (J.member "watchdog" j) (J.member "inflight")
                = Some (J.Bool false));
              check "anomaly rules reported" true
                (match Option.bind (J.member "anomaly" j) (J.member "rules") with
                | Some (J.List [ J.Str "stall:5000" ]) -> true
                | _ -> false);
              check "recorder reported on" true
                (match Option.bind (J.member "recorder" j) (J.member "enabled") with
                | Some (J.Bool true) -> true
                | _ -> false);
              (* dump: a manual, complete bundle for the named session. *)
              let reply =
                expect_ok
                  (L.request lb (line [ ("op", J.Str "dump"); ("session", J.Str "s") ]))
              in
              let bundle =
                Option.get (Option.bind (J.member "dir" (J.of_string reply)) J.to_str)
              in
              check "manual bundle has the instance" true
                (Sys.file_exists (Filename.concat bundle "instance.hg"));
              let manifest = J.of_string (read_file (Filename.concat bundle "manifest.json")) in
              check "manual trigger" true (J.member "trigger" manifest = Some (J.Str "manual"));
              (* dump of an unknown session is the session error, not a bundle. *)
              let reply = L.request lb (line [ ("op", J.Str "dump"); ("session", J.Str "nope") ]) in
              check "unknown session refused" true (not (is_ok reply));
              Alcotest.(check int)
                "exactly one bundle on disk" 1
                (Array.length (Sys.readdir dir)))))

let suite =
  [
    Alcotest.test_case "trigger rule spec grammar" `Quick test_rule_specs;
    Alcotest.test_case "latency rule and cooldown" `Quick test_latency_and_cooldown;
    Alcotest.test_case "budget, queue and busy rules" `Quick test_budget_queue_busy;
    Alcotest.test_case "heap growth poll (synthetic)" `Quick test_heap_poll_synthetic;
    Alcotest.test_case "watchdog live and post-hoc" `Quick test_watchdog_live_and_posthoc;
    Alcotest.test_case "post-hoc stall after recovery" `Quick test_posthoc_after_recovery;
    Alcotest.test_case "snapshot ring bounded" `Quick test_snapshot_ring_bounded;
    Alcotest.test_case "bundle write and manifest" `Quick test_write_bundle;
    Alcotest.test_case "stalled solve produces a bundle" `Quick test_stalled_solve_bundles;
    Alcotest.test_case "fast run fires nothing" `Quick test_fast_run_fires_nothing;
    Alcotest.test_case "health and dump ops" `Quick test_health_and_dump_ops;
  ]
